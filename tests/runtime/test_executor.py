"""Executor tests: instruction semantics, NCCL-ordered matching, deadlock
detection, pending deletions, virtual-time behaviour."""

import numpy as np
import pytest

from repro.runtime import (
    Accumulate,
    AllReduce,
    BufferRef,
    CommMismatchError,
    CommMode,
    DeadlockError,
    Delete,
    LinearCost,
    MpmdExecutor,
    Recv,
    RunTask,
    Send,
)

B = BufferRef


def task(name, ins, outs, fn, cost=0.0, **meta):
    return RunTask(name, [B(i) for i in ins], [B(o) for o in outs], fn=fn, cost=cost, meta=meta)


def const(value):
    return lambda vals: [np.asarray(value)]


def addv(vals):
    return [vals[0] + vals[1]]


class TestBasics:
    def test_single_actor_chain(self):
        ex = MpmdExecutor(1)
        progs = [[
            task("a", [], ["x"], const(2.0)),
            task("b", ["x"], ["y"], lambda v: [v[0] * 3]),
        ]]
        res = ex.execute(progs)
        assert ex.fetch(0, B("y")) == 6.0
        assert res.p2p_count == 0

    def test_send_recv_transfers_value(self):
        ex = MpmdExecutor(2)
        progs = [
            [task("a", [], ["x"], const(5.0)), Send(B("x"), 1, "x")],
            [Recv(B("x"), 0, "x", 8), task("b", ["x"], ["y"], lambda v: [v[0] + 1])],
        ]
        res = ex.execute(progs)
        assert ex.fetch(1, B("y")) == 6.0
        assert res.p2p_count == 1

    def test_missing_operand_deadlocks(self):
        ex = MpmdExecutor(1)
        with pytest.raises(DeadlockError):
            ex.execute([[task("a", ["ghost"], ["y"], lambda v: v)]])

    def test_wrong_program_count(self):
        with pytest.raises(ValueError):
            MpmdExecutor(2).execute([[]])

    def test_accumulate_initialises_then_adds(self):
        ex = MpmdExecutor(1)
        progs = [[
            task("a", [], ["v1"], const(2.0)),
            Accumulate(B("acc"), B("v1"), delete_value=True),
            task("b", [], ["v2"], const(3.0)),
            Accumulate(B("acc"), B("v2"), delete_value=True),
        ]]
        ex.execute(progs)
        assert ex.fetch(0, B("acc")) == 5.0
        assert B("v1") not in ex.stores[0]

    def test_delete_frees(self):
        ex = MpmdExecutor(1)
        ex.execute([[task("a", [], ["x"], const(1.0)), Delete(B("x"))]])
        assert B("x") not in ex.stores[0]

    def test_allreduce_sums_across_actors(self):
        ex = MpmdExecutor(2)
        progs = [
            [task("a", [], ["g"], const(1.0)), AllReduce(B("g"), (0, 1), "k")],
            [task("b", [], ["g"], const(2.0)), AllReduce(B("g"), (0, 1), "k")],
        ]
        ex.execute(progs)
        assert ex.fetch(0, B("g")) == 3.0
        assert ex.fetch(1, B("g")) == 3.0

    def test_place_and_pinned(self):
        ex = MpmdExecutor(1)
        ex.place(0, B("w"), np.float32(7.0), 4, pinned=True)
        ex.execute([[task("a", ["w"], ["y"], lambda v: [v[0] * 2])]])
        assert ex.fetch(0, B("y")) == 14.0


class TestOrderingSemantics:
    def test_mismatched_order_detected(self):
        # actor0 sends x then y; actor1 expects y then x: pairwise FIFO
        # matching must flag it (NCCL would corrupt data / hang).
        ex = MpmdExecutor(2)
        progs = [
            [
                task("a", [], ["x"], const(1.0)),
                task("b", [], ["y"], const(2.0)),
                Send(B("x"), 1, "x"),
                Send(B("y"), 1, "y"),
            ],
            [Recv(B("y"), 0, "y", 8), Recv(B("x"), 0, "x", 8)],
        ]
        with pytest.raises(CommMismatchError):
            ex.execute(progs)

    def test_sync_cross_sends_deadlock(self):
        # Figure 5's shape: both actors blocked in a send whose matching
        # recv is behind the peer's own send.
        ex = MpmdExecutor(2, comm_mode=CommMode.SYNC)
        progs = [
            [
                task("a", [], ["x"], const(1.0)),
                Send(B("x"), 1, "x"),
                Recv(B("y"), 1, "y", 8),
            ],
            [
                task("b", [], ["y"], const(2.0)),
                Send(B("y"), 0, "y"),
                Recv(B("x"), 0, "x", 8),
            ],
        ]
        with pytest.raises(DeadlockError):
            ex.execute(progs)

    def test_async_cross_sends_fine(self):
        ex = MpmdExecutor(2, comm_mode=CommMode.ASYNC)
        progs = [
            [
                task("a", [], ["x"], const(1.0)),
                Send(B("x"), 1, "x"),
                Recv(B("y"), 1, "y", 8),
                task("c", ["y"], ["z"], lambda v: [v[0] * 10]),
            ],
            [
                task("b", [], ["y"], const(2.0)),
                Send(B("y"), 0, "y"),
                Recv(B("x"), 0, "x", 8),
            ],
        ]
        ex.execute(progs)
        assert ex.fetch(0, B("z")) == 20.0

    def test_early_recv_prefetches(self):
        # recv posted before local compute: consuming task sees the value
        ex = MpmdExecutor(2)
        progs = [
            [
                Recv(B("r"), 1, "r", 8),
                task("local", [], ["l"], const(1.0)),
                task("use", ["l", "r"], ["o"], addv),
            ],
            [task("p", [], ["r"], const(41.0)), Send(B("r"), 0, "r")],
        ]
        ex.execute(progs)
        assert ex.fetch(0, B("o")) == 42.0


class TestPendingDeletions:
    def test_delete_before_send_matched_is_deferred(self):
        # §4.3: delete arrives while the send is still unmatched; buffer
        # must survive until the transfer happens.
        ex = MpmdExecutor(2, comm_mode=CommMode.ASYNC)
        progs = [
            [
                task("a", [], ["x"], const(9.0)),
                Send(B("x"), 1, "x"),
                Delete(B("x")),  # send not yet matched: deferred
                task("spin", [], ["s"], const(0.0)),
                Delete(B("s")),  # later delete flushes the queue
            ],
            [
                task("b", [], ["w"], const(1.0)),  # delay the recv post
                Recv(B("x"), 0, "x", 8),
                task("use", ["x", "w"], ["o"], addv),
            ],
        ]
        ex.execute(progs)
        assert ex.fetch(1, B("o")) == 10.0
        assert B("x") not in ex.stores[0]  # eventually reclaimed

    def test_use_after_free_is_loud(self):
        ex = MpmdExecutor(1)
        progs = [[
            task("a", [], ["x"], const(1.0)),
            Delete(B("x")),
            Send(B("x"), 0, "x"),
        ]]
        with pytest.raises((KeyError, DeadlockError)):
            ex.execute(progs)


class TestVirtualTime:
    def test_task_costs_accumulate(self):
        ex = MpmdExecutor(1, cost_model=LinearCost())
        res = ex.execute([[
            task("a", [], ["x"], const(1.0), cost=2.0),
            task("b", ["x"], ["y"], lambda v: v, cost=3.0),
        ]])
        assert res.makespan == pytest.approx(5.0)

    def test_dispatch_overhead_charged_per_task(self):
        ex = MpmdExecutor(1, cost_model=LinearCost(dispatch=0.5))
        res = ex.execute([[
            task("a", [], ["x"], const(1.0), cost=1.0),
            task("b", ["x"], ["y"], lambda v: v, cost=1.0),
        ]])
        assert res.makespan == pytest.approx(3.0)

    def test_transfer_time_on_critical_path(self):
        cm = LinearCost(p2p_latency=1.0, p2p_bandwidth=8.0)
        ex = MpmdExecutor(2, cost_model=cm)
        # the *sender's* logical buffer size governs the transfer time
        producer = RunTask("a", [], [B("x")], fn=const(1.0), cost=2.0,
                           meta={"out_nbytes": [16]})
        progs = [
            [producer, Send(B("x"), 1, "x")],
            [Recv(B("x"), 0, "x", 16), task("b", ["x"], ["y"], lambda v: v, cost=1.0)],
        ]
        res = ex.execute(progs)
        # 2.0 compute + (1.0 + 16/8) transfer + 1.0 compute
        assert res.makespan == pytest.approx(6.0)

    def test_async_send_overlaps_compute(self):
        cm = LinearCost(p2p_latency=10.0, p2p_bandwidth=float("inf"))
        progs_builder = lambda: [
            [
                task("p", [], ["x"], const(1.0), cost=1.0),
                Send(B("x"), 1, "x"),
                task("w", [], ["l"], const(0.0), cost=5.0),  # local work
            ],
            [Recv(B("x"), 0, "x", 8), task("u", ["x"], ["y"], lambda v: v, cost=1.0)],
        ]
        r_async = MpmdExecutor(2, cost_model=cm, comm_mode=CommMode.ASYNC).execute(progs_builder())
        r_sync = MpmdExecutor(2, cost_model=cm, comm_mode=CommMode.SYNC).execute(progs_builder())
        # ASYNC: sender's local work overlaps the transfer; SYNC: it waits.
        a0 = r_async.actor_finish[0]
        s0 = r_sync.actor_finish[0]
        assert a0 == pytest.approx(6.0)
        assert s0 == pytest.approx(16.0)

    def test_timeline_events_recorded(self):
        ex = MpmdExecutor(2, cost_model=LinearCost(p2p_latency=1.0))
        progs = [
            [task("a", [], ["x"], const(1.0), cost=1.0), Send(B("x"), 1, "x")],
            [Recv(B("x"), 0, "x", 4)],
        ]
        res = ex.execute(progs)
        kinds = {e.kind for e in res.timeline}
        assert "task" in kinds and "send" in kinds and "recv" in kinds
        starts = [e.start for e in res.timeline]
        assert starts == sorted(starts)
