"""Differential suite: the persistent mp actor pool vs cold mp vs event.

``mp_persistent=True`` (the ``engine="mp"`` default since the pool
landed) must change *performance only*: results stay bit-identical to
the in-process event engine for every schedule, and a multi-step
training loop through one warm pool produces exactly what the same loop
produces through cold spawn-per-step meshes.  Every test runs under a
hard SIGALRM timeout so a pool regression can never wedge CI (the same
guard as ``test_mp_equivalence.py``; pytest-timeout is not in the
image).

The tier-1 lane runs the small gallery subset plus a short cold-vs-warm
loop (cold spawns cost real seconds per step); the full 10-schedule
sweep and the 20-step loop of the issue carry the ``slow`` marker and
run with the benchmarks lane.
"""

import signal

import pytest

from repro import core
from repro.runtime import CommMode
from tests.core.test_linear_backend import GALLERY, assert_bit_identical, make_problem

HARD_TIMEOUT_S = 300

#: far above any healthy schedule's silence, far below the SIGALRM cap.
WATCHDOG_S = 60.0

SUBSET = [s for s in GALLERY if s.name in ("1F1B", "ZB-H1", "Interleaved(v=2)")]


@pytest.fixture(autouse=True)
def hard_timeout():
    def boom(signum, frame):  # pragma: no cover - only fires on regression
        raise TimeoutError(
            f"mp pool differential test exceeded the hard {HARD_TIMEOUT_S}s cap"
        )

    old = signal.signal(signal.SIGALRM, boom)
    signal.alarm(HARD_TIMEOUT_S)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, old)


def _mesh(schedule, engine, **kw):
    if engine == "mp":
        kw.setdefault("mp_watchdog_s", WATCHDOG_S)
    return core.RemoteMesh((schedule.n_actors,), engine=engine, **kw)


class TestGalleryEquivalence:
    @pytest.mark.parametrize("schedule", SUBSET, ids=lambda s: s.name)
    def test_subset_bit_identical(self, schedule):
        ts, params, batch = make_problem(4, n_mbs=8)
        want = _mesh(schedule, "event").distributed(ts, schedule=schedule)(
            params, batch
        )
        mesh = _mesh(schedule, "mp")
        step = mesh.distributed(ts, schedule=schedule)
        got = step(params, batch)
        try:
            assert_bit_identical(want, got)
            assert step.last_result.engine == "mp"
            assert mesh._mp_pool is not None and mesh._mp_pool.alive()
        finally:
            mesh.close()

    @pytest.mark.slow
    @pytest.mark.parametrize("schedule", GALLERY, ids=lambda s: s.name)
    def test_full_gallery_bit_identical(self, schedule):
        ts, params, batch = make_problem(4, n_mbs=8)
        want = _mesh(schedule, "event").distributed(ts, schedule=schedule)(
            params, batch
        )
        mesh = _mesh(schedule, "mp")
        try:
            got = mesh.distributed(ts, schedule=schedule)(params, batch)
            assert_bit_identical(want, got)
        finally:
            mesh.close()

    def test_shared_memory_transport_bit_identical(self):
        """Forcing every payload — inputs, transfers, results — through
        shared-memory segments changes the pool's transport, never the
        data."""
        schedule = core.OneFOneB(4)
        ts, params, batch = make_problem(4, n_mbs=8)
        want = _mesh(schedule, "event").distributed(ts, schedule=schedule)(
            params, batch
        )
        mesh = _mesh(schedule, "mp", mp_shm_threshold=1)
        try:
            got = mesh.distributed(ts, schedule=schedule)(params, batch)
            assert_bit_identical(want, got)
        finally:
            mesh.close()

    def test_data_parallel_bit_identical(self):
        """dp=2 on one pool exercises the queue-emulated barrier and the
        routed gather/result collective plumbing (the pool cannot use the
        one-shot backend's pre-spawned ``mp.Barrier``)."""
        ts, params, batch = make_problem(2, n_mbs=4, mbsz=8)
        want = core.RemoteMesh((2, 2)).distributed(
            ts, schedule=core.OneFOneB(2)
        )(params, batch)
        mesh = core.RemoteMesh((2, 2), engine="mp", mp_watchdog_s=WATCHDOG_S)
        try:
            step = mesh.distributed(ts, schedule=core.OneFOneB(2))
            # twice through the same pool: the barrier's generation
            # counters must survive reuse
            got = step(params, batch)
            again = step(params, batch)
            assert_bit_identical(want, got)
            assert_bit_identical(want, again)
        finally:
            mesh.close()

    @pytest.mark.slow
    def test_sync_mode_bit_identical(self):
        schedule = core.OneFOneB(4)
        ts, params, batch = make_problem(4, n_mbs=8)
        want = _mesh(schedule, "event", comm_mode=CommMode.SYNC).distributed(
            ts, schedule=schedule
        )(params, batch)
        mesh = _mesh(schedule, "mp", comm_mode=CommMode.SYNC)
        try:
            got = mesh.distributed(ts, schedule=schedule)(params, batch)
            assert_bit_identical(want, got)
        finally:
            mesh.close()


def _loop(mesh, ts, params, batch, n_steps, schedule):
    """A training loop: feed updated params back in, collect every loss."""
    step = mesh.distributed(ts, schedule=schedule)
    losses = []
    for _ in range(n_steps):
        params, loss = step(params, batch)
        losses.append(loss)
    return params, losses


class TestTrainingLoop:
    def test_loop_matches_cold_execute(self):
        """A short training loop through one warm pool is bit-identical
        to the same loop through cold spawn-per-step meshes (tier-1
        miniature of the slow 20-step version — cold spawns cost ~2s per
        step)."""
        schedule = core.OneFOneB(4)
        ts, params, batch = make_problem(4, n_mbs=8)
        cold = core.RemoteMesh(
            (4,), engine="mp", mp_persistent=False, mp_watchdog_s=WATCHDOG_S
        )
        want_p, want_l = _loop(cold, ts, params, batch, 3, schedule)
        mesh = core.RemoteMesh((4,), engine="mp", mp_watchdog_s=WATCHDOG_S)
        try:
            got_p, got_l = _loop(mesh, ts, params, batch, 3, schedule)
            assert mesh._mp_pool.submit_count == 3
            assert mesh._mp_pool.ship_count == 1  # shipped once, reused twice
            assert_bit_identical(want_p, got_p)
            assert_bit_identical(want_l, got_l)
        finally:
            mesh.close()

    def test_20_step_loop_matches_event(self):
        """20 steps through one pool — one spawn, one ship, 20 warm
        submissions — match the event engine's loop exactly."""
        schedule = core.OneFOneB(4)
        ts, params, batch = make_problem(4, n_mbs=8)
        want_p, want_l = _loop(
            core.RemoteMesh((4,)), ts, params, batch, 20, schedule
        )
        mesh = core.RemoteMesh((4,), engine="mp", mp_watchdog_s=WATCHDOG_S)
        try:
            got_p, got_l = _loop(mesh, ts, params, batch, 20, schedule)
            assert mesh._mp_pool.submit_count == 20
            assert mesh._mp_pool.ship_count == 1
            assert_bit_identical(want_p, got_p)
            assert_bit_identical(want_l, got_l)
        finally:
            mesh.close()

    @pytest.mark.slow
    def test_20_step_loop_matches_cold_execute(self):
        """The issue's acceptance check verbatim: a 20-step training loop
        through one pool matches 20 cold ``execute()`` calls exactly."""
        schedule = core.OneFOneB(4)
        ts, params, batch = make_problem(4, n_mbs=8)
        cold = core.RemoteMesh(
            (4,), engine="mp", mp_persistent=False, mp_watchdog_s=WATCHDOG_S
        )
        want_p, want_l = _loop(cold, ts, params, batch, 20, schedule)
        mesh = core.RemoteMesh((4,), engine="mp", mp_watchdog_s=WATCHDOG_S)
        try:
            got_p, got_l = _loop(mesh, ts, params, batch, 20, schedule)
            assert mesh._mp_pool.ship_count == 1
            assert_bit_identical(want_p, got_p)
            assert_bit_identical(want_l, got_l)
        finally:
            mesh.close()


class TestWiring:
    def test_persistent_is_default_and_opt_out(self):
        mesh = core.RemoteMesh((2,), engine="mp")
        assert mesh.mp_persistent is True
        cold = core.RemoteMesh((2,), engine="mp", mp_persistent=False)
        assert cold.mp_persistent is False

    def test_cold_path_spawns_no_pool(self):
        ts, params, batch = make_problem(2, n_mbs=4)
        mesh = core.RemoteMesh(
            (2,), engine="mp", mp_persistent=False, mp_watchdog_s=WATCHDOG_S
        )
        step = mesh.distributed(ts, schedule=core.OneFOneB(2))
        step(params, batch)
        assert mesh._mp_pool is None

    def test_executor_rejects_pool_mismatches(self):
        from repro.runtime import ActorPool, MpmdExecutor

        pool = ActorPool(2, watchdog_s=WATCHDOG_S)
        try:
            with pytest.raises(ValueError, match="engine='mp'"):
                MpmdExecutor(2, engine="event", mp_pool=pool)
            with pytest.raises(ValueError, match="actors"):
                MpmdExecutor(3, engine="mp", mp_pool=pool)
        finally:
            pool.shutdown()

    def test_mesh_close_is_idempotent_and_respawns(self):
        ts, params, batch = make_problem(2, n_mbs=4)
        mesh = core.RemoteMesh((2,), engine="mp", mp_watchdog_s=WATCHDOG_S)
        step = mesh.distributed(ts, schedule=core.OneFOneB(2))
        want = step(params, batch)
        first_pool = mesh._mp_pool
        mesh.close()
        mesh.close()
        assert mesh._mp_pool is None and first_pool.closed
        # the mesh stays usable: the next call spawns a fresh pool
        got = step(params, batch)
        assert_bit_identical(want, got)
        assert mesh._mp_pool is not None and mesh._mp_pool is not first_pool
        mesh.close()


class TestOptLevelMultiplex:
    def test_two_opt_levels_share_one_warm_pool(self):
        """The same train step compiled at ``optimize=False`` and
        ``optimize=True`` multiplexes through one warm pool: the worker
        program caches key the two variants separately (distinct
        ``.L{level}`` program keys, one ship each), and every interleaved
        submission stays bit-identical to its own event-engine reference.
        A collision — a worker running the L0 programs for an L1 submit
        or vice versa — would show up as the optimized result (memo
        prologues, pruned boundaries) leaking into the baseline lane."""
        schedule = core.OneFOneB(2)
        ts, params, batch = make_problem(2, n_mbs=4)
        want = {}
        for lvl in (False, True):
            want[lvl] = _mesh(schedule, "event").distributed(
                ts, schedule=schedule, optimize=lvl
            )(params, batch)
        assert_bit_identical(want[False], want[True])  # L1 is exact

        mesh = _mesh(schedule, "mp")
        try:
            steps = {
                lvl: mesh.distributed(ts, schedule=schedule, optimize=lvl)
                for lvl in (False, True)
            }
            keys = {lvl: None for lvl in steps}
            for _ in range(3):  # interleave: L0, L1, L0, L1, ...
                for lvl, step in steps.items():
                    assert_bit_identical(want[lvl], step(params, batch))
                    keys[lvl] = step.compiled.program_key
            assert ".L0" in keys[False] and ".L1" in keys[True]
            assert keys[False] != keys[True]
            pool = mesh._mp_pool
            assert pool.submit_count == 6
            # each variant pickled to the workers exactly once; the four
            # re-submissions hit the worker-side cache
            assert pool.ship_count == 2
        finally:
            mesh.close()
