"""Reuse / soak / chaos battery for the persistent mp actor pool.

The differential suite (``test_mp_pool.py``) pins down *what* the pool
computes; this one pins down how it *lives*: programs ship once and are
cached worker-side, independent compiled steps interleave on one warm
mesh, backpressure really blocks at the queue bound, an idle pool never
trips the watchdog, shared-memory segments return to baseline after
every submission, and a ``kill -9``'d worker fails pending futures with
a diagnostic instead of hanging the driver.  Every test runs under the
same hard SIGALRM cap as ``test_mp_equivalence.py`` — the chaos paths
are exactly the ones whose regressions wedge a suite.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro import core
from repro.runtime import (
    ActorPool,
    BufferRef,
    CommMode,
    DeadlockError,
    PoolBackpressureTimeout,
    Recv,
    RunTask,
    Send,
)
from repro.runtime.store import ObjectStore
from tests.core.test_linear_backend import assert_bit_identical, make_problem

HARD_TIMEOUT_S = 300

WATCHDOG_S = 60.0


@pytest.fixture(autouse=True)
def hard_timeout():
    def boom(signum, frame):  # pragma: no cover - only fires on regression
        raise TimeoutError(
            f"mp pool lifecycle test exceeded the hard {HARD_TIMEOUT_S}s cap"
        )

    old = signal.signal(signal.SIGALRM, boom)
    signal.alarm(HARD_TIMEOUT_S)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, old)


# -- tiny hand-written programs (module-level fns: spawn needs pickles) ----


def _double(vals):
    return [vals[0] * 2.0]


def _sleepy(vals):
    time.sleep(0.8)
    return [vals[0] + 1.0]


def _long_sleep(vals):  # pragma: no cover - killed mid-sleep by chaos tests
    time.sleep(30.0)
    return [vals[0]]


def _one_rank_program(fn):
    return [
        [RunTask("t", [BufferRef("x")], [BufferRef("y")], fn=fn,
                 meta={"out_nbytes": [32]})],
    ]


def _one_rank_stores(value=None):
    store = ObjectStore(0)
    if value is None:
        value = np.arange(8, dtype=np.float32)
    store.put(BufferRef("x"), value, 32)
    return [store]


def _shm_count() -> int:
    """Live shared-memory segments this boot (multiprocessing names all
    of its segments ``psm_*`` on Linux)."""
    try:
        return sum(1 for f in os.listdir("/dev/shm") if f.startswith("psm_"))
    except FileNotFoundError:  # pragma: no cover - non-Linux fallback
        return 0


def _settle_to(baseline: int, deadline_s: float = 5.0) -> int:
    """Segment count once it settles back to ``baseline`` (unlinks of
    just-consumed payloads can trail ``result()`` by a scheduler tick)."""
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        n = _shm_count()
        if n <= baseline:
            return n
        time.sleep(0.05)
    return _shm_count()


class TestReuse:
    def test_program_cache_hit_on_resubmission(self):
        """The same program object re-submitted N times is pickled to the
        workers exactly once — the ship counter stays at 1."""
        with ActorPool(1, watchdog_s=WATCHDOG_S) as pool:
            progs = _one_rank_program(_double)
            for i in range(5):
                stores = _one_rank_stores(np.full(8, float(i), np.float32))
                pool.submit(progs, stores).result(timeout=60)
                got = stores[0].get(BufferRef("y")).value
                np.testing.assert_array_equal(got, np.full(8, 2.0 * i))
            assert pool.ship_count == 1
            assert pool.submit_count == 5

    def test_two_compiled_steps_interleave_on_one_pool(self):
        """Two independently compiled step functions multiplex one warm
        mesh: two ships, interleaved submissions, results bit-identical
        to the event engine throughout."""
        ts_a, params_a, batch_a = make_problem(2, n_mbs=4)
        ts_b, params_b, batch_b = make_problem(2, n_mbs=4, d=16, seed=7)
        ev = core.RemoteMesh((2,))
        want_a = ev.distributed(ts_a, schedule=core.OneFOneB(2))(params_a, batch_a)
        want_b = ev.distributed(ts_b, schedule=core.GPipe(2))(params_b, batch_b)
        mesh = core.RemoteMesh((2,), engine="mp", mp_watchdog_s=WATCHDOG_S)
        try:
            step_a = mesh.distributed(ts_a, schedule=core.OneFOneB(2))
            step_b = mesh.distributed(ts_b, schedule=core.GPipe(2))
            for _ in range(2):  # A, B, A, B on the same pool
                assert_bit_identical(want_a, step_a(params_a, batch_a))
                assert_bit_identical(want_b, step_b(params_b, batch_b))
            pool = mesh._mp_pool
            assert pool.ship_count == 2
            assert pool.submit_count == 4
            assert len({p for p in pool.pids}) == 2  # same two processes
        finally:
            mesh.close()

    def test_pipelined_submissions_overlap(self):
        """Futures return immediately: step N+1 is accepted (shipped,
        inputs staged) while step N is still executing."""
        with ActorPool(1, watchdog_s=WATCHDOG_S, max_inflight=4) as pool:
            progs = _one_rank_program(_sleepy)
            t0 = time.monotonic()
            futs = [pool.submit(progs, _one_rank_stores()) for _ in range(3)]
            submit_elapsed = time.monotonic() - t0
            assert submit_elapsed < 0.5  # submission never waits on execution
            assert pool.inflight == 3
            for f in futs:
                f.result(timeout=60)
            assert pool.inflight == 0


class TestBackpressure:
    def test_submit_blocks_at_queue_bound(self):
        with ActorPool(1, watchdog_s=WATCHDOG_S, max_inflight=2) as pool:
            progs = _one_rank_program(_sleepy)
            futs = [pool.submit(progs, _one_rank_stores()) for _ in range(2)]
            with pytest.raises(PoolBackpressureTimeout, match="queue full"):
                pool.submit(progs, _one_rank_stores(), timeout=0.1)
            # a slot frees when a step completes; the same submit succeeds
            futs[0].result(timeout=60)
            late = pool.submit(progs, _one_rank_stores(), timeout=30.0)
            futs[1].result(timeout=60)
            late.result(timeout=60)

    def test_bound_validated(self):
        with pytest.raises(ValueError, match="max_inflight"):
            ActorPool(1, max_inflight=0)


class TestWatchdog:
    def test_idle_pool_survives_past_watchdog(self):
        """The no-progress watchdog only arms while submissions are
        outstanding: a pool idling far past ``watchdog_s`` still serves
        the next step."""
        with ActorPool(1, watchdog_s=2.0) as pool:
            progs = _one_rank_program(_double)
            pool.submit(progs, _one_rank_stores()).result(timeout=60)
            time.sleep(3.0)  # > watchdog_s, zero control traffic
            assert pool.alive()
            pool.submit(progs, _one_rank_stores()).result(timeout=60)
            assert pool.alive()

    def test_stuck_submission_fails_pending_futures(self):
        """A genuinely stuck step trips the watchdog with the standard
        per-actor diagnostic, and *every* pending future carries it."""
        progs = [
            [Send(BufferRef("x"), 1, "never")],  # SYNC send, no recv posted
            [],
        ]
        pool = ActorPool(2, comm_mode=CommMode.SYNC, watchdog_s=3.0)
        try:
            stores = [ObjectStore(0), ObjectStore(1)]
            stores[0].put(BufferRef("x"), np.zeros(4, np.float32), 16)
            fut = pool.submit(progs, stores)
            with pytest.raises(DeadlockError) as err:
                fut.result(timeout=120)
            msg = str(err.value)
            assert "mp pool" in msg
            assert "watchdog" in msg
            assert "stuck at" in msg
            assert "program counters" in msg
            assert pool.closed
            with pytest.raises(RuntimeError, match="dead"):
                pool.submit(progs, [ObjectStore(0), ObjectStore(1)])
        finally:
            pool.shutdown()


class TestSoak:
    def test_soak_shm_segments_return_to_baseline(self):
        """20 steps through one pool with every payload forced onto the
        shared-memory path: the system segment count returns to its
        baseline after *each* step — per-submission accounting, no leak
        however long the pool lives."""
        ts, params, batch = make_problem(2, n_mbs=4)
        baseline = _shm_count()
        mesh = core.RemoteMesh(
            (2,), engine="mp", mp_watchdog_s=WATCHDOG_S, mp_shm_threshold=1
        )
        try:
            step = mesh.distributed(ts, schedule=core.OneFOneB(2))
            for i in range(20):
                params, _ = step(params, batch)
                n = _settle_to(baseline)
                assert n <= baseline, (
                    f"step {i}: {n - baseline} shared-memory segments leaked "
                    f"(baseline {baseline})"
                )
            pool = mesh._mp_pool
            assert pool.submit_count == 20 and pool.ship_count == 1
        finally:
            mesh.close()
        assert _settle_to(baseline) <= baseline

    @pytest.mark.slow
    def test_soak_interleaved_steps_and_idle_gaps(self):
        """Longer soak: two step functions, idle gaps past the watchdog,
        segment baseline held throughout."""
        ts, params, batch = make_problem(2, n_mbs=4)
        baseline = _shm_count()
        mesh = core.RemoteMesh(
            (2,), engine="mp", mp_watchdog_s=2.0, mp_shm_threshold=1
        )
        try:
            step_a = mesh.distributed(ts, schedule=core.OneFOneB(2))
            step_b = mesh.distributed(ts, schedule=core.GPipe(2))
            for i in range(10):
                params, _ = step_a(params, batch)
                params, _ = step_b(params, batch)
                if i % 4 == 3:
                    time.sleep(2.5)  # idle past the watchdog window
                assert _settle_to(baseline) <= baseline
            assert mesh._mp_pool.alive()
        finally:
            mesh.close()


class TestChaos:
    def test_killed_worker_fails_pending_futures(self):
        """``kill -9`` of one worker mid-step: every pending future fails
        promptly with a diagnostic naming the actor and exit code — the
        driver never hangs, and the pool refuses further submissions."""
        pool = ActorPool(1, watchdog_s=WATCHDOG_S, max_inflight=4)
        try:
            progs = _one_rank_program(_long_sleep)
            fut1 = pool.submit(progs, _one_rank_stores())
            fut2 = pool.submit(progs, _one_rank_stores())
            time.sleep(0.5)  # let the first step start its sleep
            os.kill(pool.pids[0], signal.SIGKILL)
            with pytest.raises(RuntimeError, match="died without reporting"):
                fut1.result(timeout=60)
            exc = fut2.exception(timeout=60)
            assert exc is not None and "actor 0" in str(exc)
            assert "exitcode" in str(exc)
            assert pool.closed and not pool.alive()
            with pytest.raises(RuntimeError, match="dead"):
                pool.submit(progs, _one_rank_stores())
        finally:
            pool.shutdown()

    def test_mesh_respawns_pool_after_crash(self):
        """A ``RemoteMesh`` whose pool died serves the next step from a
        fresh pool — crash recovery needs no user-visible plumbing."""
        ts, params, batch = make_problem(2, n_mbs=4)
        mesh = core.RemoteMesh((2,), engine="mp", mp_watchdog_s=WATCHDOG_S)
        try:
            step = mesh.distributed(ts, schedule=core.OneFOneB(2))
            want = step(params, batch)
            dead_pool = mesh._mp_pool
            os.kill(dead_pool.pids[1], signal.SIGKILL)
            deadline = time.monotonic() + 30.0
            while dead_pool.alive() and time.monotonic() < deadline:
                time.sleep(0.05)
            got = step(params, batch)  # transparently respawns
            assert_bit_identical(want, got)
            assert mesh._mp_pool is not dead_pool
        finally:
            mesh.close()

    def test_worker_exception_fails_submission(self):
        """A raising task payload surfaces as the driver-side error with
        the worker traceback embedded, not a hang."""

        pool = ActorPool(1, watchdog_s=WATCHDOG_S)
        try:
            progs = _one_rank_program(_raise_boom)
            fut = pool.submit(progs, _one_rank_stores())
            with pytest.raises(RuntimeError, match="boom"):
                fut.result(timeout=60)
            assert pool.closed
        finally:
            pool.shutdown()


def _raise_boom(vals):
    raise ValueError("boom")


class TestShutdown:
    def test_shutdown_drains_pending_work(self):
        """``shutdown()`` is graceful: submissions already accepted run
        to completion before the workers exit."""
        pool = ActorPool(1, watchdog_s=WATCHDOG_S, max_inflight=4)
        progs = _one_rank_program(_sleepy)
        stores = _one_rank_stores()
        fut = pool.submit(progs, stores)
        pool.shutdown()
        res = fut.result(timeout=1.0)  # already merged during shutdown
        assert res.engine == "mp"
        np.testing.assert_array_equal(
            stores[0].get(BufferRef("y")).value,
            np.arange(8, dtype=np.float32) + 1.0,
        )

    def test_shutdown_idempotent_and_context_manager(self):
        pool = ActorPool(1, watchdog_s=WATCHDOG_S)
        with pool:
            pool.submit(_one_rank_program(_double), _one_rank_stores()).result(
                timeout=60
            )
        pool.shutdown()  # second call is a no-op
        assert pool.closed


def _assert_reaped(pids, deadline_s=10.0):
    """Every pid is fully gone — not running and not a zombie (``/proc``
    keeps an entry for a dead child until its parent reaps it)."""
    deadline = time.monotonic() + deadline_s
    alive = list(pids)
    while time.monotonic() < deadline:
        alive = [p for p in alive if os.path.exists(f"/proc/{p}")]
        if not alive:
            return
        time.sleep(0.05)
    raise AssertionError(f"unreaped pool worker pids: {alive}")


class TestRespawnHygiene:
    """Deterministic kill/respawn cycles leak nothing: every dead pool's
    shared-memory segments return to baseline, every worker process is
    reaped (no zombies), and the mesh that survived N generations of
    chaos still computes bit-identical results."""

    N_CYCLES = 4

    def test_kill_respawn_cycles_leak_nothing(self):
        from repro.runtime import FaultPlan, KillRank

        ts, params, batch = make_problem(2, n_mbs=4)
        baseline = _shm_count()
        # one kill armed per pool generation; each respawned pool's
        # worker-local step counter restarts at 0, so every cycle is one
        # healthy step followed by one injected death
        plan = FaultPlan([
            KillRank(rank=g % 2, at_step=1, generation=g)
            for g in range(self.N_CYCLES)
        ])
        mesh = core.RemoteMesh(
            (2,), engine="mp", mp_watchdog_s=WATCHDOG_S,
            mp_shm_threshold=1, fault_plan=plan,
        )
        want = None
        dead_pids: list[int] = []
        try:
            step = mesh.distributed(ts, schedule=core.OneFOneB(2))
            for cycle in range(self.N_CYCLES):
                out = step(params, batch)  # generation-local step 0
                if want is None:
                    want = out
                else:
                    assert_bit_identical(want, out)
                pids = list(mesh._mp_pool.pids)
                with pytest.raises(RuntimeError, match="died without reporting"):
                    step(params, batch)  # generation-local step 1
                dead_pids.extend(pids)
                assert _settle_to(baseline) <= baseline, (
                    f"kill/respawn cycle {cycle} leaked shm segments"
                )
            # generation N arms nothing: the mesh is healthy again
            got = step(params, batch)
            assert_bit_identical(want, got)
            assert mesh._pool_generation == self.N_CYCLES + 1
        finally:
            mesh.close()
        _assert_reaped(dead_pids)
        assert _settle_to(baseline) <= baseline
