"""`ExecutionResult` JSON persistence.

A measured timeline (virtual-time simulation or a real ``engine="mp"``
run) must survive ``to_json`` / ``from_json`` well enough that
``CostModel.from_result`` rebuilds the *same* cost table from the
round-tripped result as from the live one — that is what makes
"measure once, replay-tune later" a storable workflow.
"""

import dataclasses

import numpy as np
import pytest

from repro import core, ir
from repro.core.autotune import CostModel
from repro.perf.pipeline_sim import price_schedule
from repro.runtime.executor import ExecutionResult
from tests.core.test_linear_backend import make_problem


def _priced_result(schedule=None, n_mbs=6):
    schedule = schedule or core.OneFOneB(4)
    cm = CostModel(fwd=(1.0, 1.5, 2.0, 3.0), bwd=(2.0, 3.0, 4.0, 6.0))
    return price_schedule(schedule, n_mbs, cm, dispatch_s=0.1, p2p_latency_s=0.2)


class TestRoundTrip:
    def test_fields_identical(self):
        res = _priced_result()
        back = ExecutionResult.from_json(res.to_json())
        assert back.makespan == res.makespan
        assert back.engine == res.engine
        assert back.visits == res.visits
        assert back.repolls == res.repolls
        assert back.actor_finish == list(res.actor_finish)
        assert back.p2p_bytes == res.p2p_bytes
        assert back.p2p_count == res.p2p_count
        assert len(back.timeline) == len(res.timeline)
        for a, b in zip(res.timeline, back.timeline):
            assert (a.actor, a.kind, a.name, a.start, a.end, a.nbytes) == (
                b.actor, b.kind, b.name, b.start, b.end, b.nbytes,
            )
            assert a.meta == b.meta
        assert set(back.wait_profile) == set(res.wait_profile)
        for label, stat in res.wait_profile.items():
            got = back.wait_profile[label]
            assert (got.count, got.total, got.by_rank) == (
                stat.count, stat.total, stat.by_rank,
            )

    def test_cost_model_replay_matches_live(self):
        res = _priced_result(core.ZBH1(4))
        live = CostModel.from_result(res, n_stages=4)
        replayed = CostModel.from_result(
            ExecutionResult.from_json(res.to_json()), n_stages=4
        )
        assert replayed.fwd == live.fwd
        assert replayed.bwd == live.bwd

    def test_numeric_run_round_trips(self):
        """A real (numeric) execution's result — NumPy ints in event meta
        and all — serializes cleanly and replays byte-for-byte."""
        ts, params, batch = make_problem(3, n_mbs=4)
        mesh = core.RemoteMesh((3,))
        step = mesh.distributed(ts, schedule=core.OneFOneB(3))
        step(params, batch)
        res = step.last_result
        back = ExecutionResult.from_json(res.to_json())
        assert back.to_json() == res.to_json()

    def test_wait_profile_ranks_survive_as_ints(self):
        res = _priced_result()
        back = ExecutionResult.from_json(res.to_json())
        assert back.parked_by_rank() == res.parked_by_rank()

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError, match="version"):
            ExecutionResult.from_json('{"version": 99}')
