"""Deterministic fault injection: every FaultPlan kind does what it says.

These tests pin down the *injection* layer in isolation — plans are
matched to ranks and pool generations, a kill fires at exactly the
declared step boundary with the declared exit code, a wedge trips the
no-progress watchdog, a dropped channel surfaces as the standard
deadlock diagnostic naming the blocked transfer, a delay changes timing
and nothing else, and an injected death leaks no shared-memory segments.
Recovery from these faults is ``test_recovery.py``'s subject; here the
meshes have no policy, so each fault must fail fast with the same
diagnostics a *real* crash produces (the acceptance criterion's
"recovery disabled" half).

Every test runs under the hard SIGALRM cap of the other mp suites, and
every fault fires at a deterministic program point — no racy ``kill -9``
timing anywhere.
"""

import pickle
import signal

import numpy as np
import pytest

from repro import core
from repro.models.checkpoint import (
    CheckpointCorruptError,
    load_checkpoint,
    save_checkpoint,
)
from repro.runtime import (
    CorruptCheckpoint,
    DeadlockError,
    DelayMessage,
    DropMessage,
    FaultPlan,
    KillRank,
    WedgeRank,
    execute_mp,
)
from repro.runtime.faults import KILL_EXIT_CODE
from tests.core.test_linear_backend import assert_bit_identical, make_problem
from tests.runtime.test_mp_pool_lifecycle import _settle_to, _shm_count

HARD_TIMEOUT_S = 300

WATCHDOG_S = 60.0

#: small watchdog for faults that surface *via* the watchdog (wedge,
#: dropped message) — big enough for healthy compute, small enough to
#: keep the battery fast.
TRIP_WATCHDOG_S = 3.0


@pytest.fixture(autouse=True)
def hard_timeout():
    def boom(signum, frame):  # pragma: no cover - only fires on regression
        raise TimeoutError(
            f"fault-injection test exceeded the hard {HARD_TIMEOUT_S}s cap"
        )

    old = signal.signal(signal.SIGALRM, boom)
    signal.alarm(HARD_TIMEOUT_S)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, old)


def _fault_mesh(plan, n=2, watchdog_s=WATCHDOG_S, **kw):
    return core.RemoteMesh(
        (n,), engine="mp", mp_watchdog_s=watchdog_s, fault_plan=plan, **kw
    )


class TestFaultPlan:
    def test_kill_shorthand_matches_explicit_fault(self):
        plan = FaultPlan(kill_rank=1, at_step=7)
        assert plan.faults == (KillRank(rank=1, at_step=7),)
        after = FaultPlan(kill_rank=0, at_step=3, when="after")
        assert after.faults[0].when == "after"

    def test_shorthand_requires_at_step(self):
        with pytest.raises(ValueError, match="at_step"):
            FaultPlan(kill_rank=1)

    def test_rejects_unknown_fault_objects(self):
        with pytest.raises(TypeError, match="unknown fault"):
            FaultPlan(["kill rank 1"])

    def test_kill_when_validated(self):
        with pytest.raises(ValueError, match="before"):
            KillRank(rank=0, at_step=0, when="sometime")

    def test_corrupt_mode_validated(self):
        with pytest.raises(ValueError, match="truncate"):
            CorruptCheckpoint(at_snapshot=0, mode="shred")

    def test_for_rank_gates_on_rank_and_generation(self):
        plan = FaultPlan(
            [KillRank(rank=1, at_step=7), WedgeRank(rank=0, at_step=2, generation=1)]
        )
        assert plan.for_rank(1, 0) is not None  # the kill
        assert plan.for_rank(1, 1) is None  # wrong generation
        assert plan.for_rank(0, 0) is None  # wedge is generation 1
        assert plan.for_rank(0, 1) is not None
        assert plan.for_rank(2, 0) is None  # untargeted rank

    def test_checkpoint_faults_are_driver_side(self):
        plan = FaultPlan(
            [CorruptCheckpoint(at_snapshot=2), KillRank(rank=0, at_step=1)]
        )
        assert [f.at_snapshot for f in plan.checkpoint_faults] == [2]
        # never shipped to workers: no rank arms them
        state = plan.for_rank(0, 0)
        assert state is not None and not state.kill_after and state.kill_before

    def test_plan_pickles(self):
        plan = FaultPlan(
            [KillRank(1, 7), WedgeRank(0, 2), DropMessage(0, 1, 3),
             DelayMessage(0, 1, 0.01), CorruptCheckpoint(1)]
        )
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.faults == plan.faults


class TestKill:
    def test_pool_kill_fires_at_declared_step(self):
        """Steps before ``at_step`` succeed; step ``at_step`` fails with
        the PR 6 crash diagnostic carrying the SIGKILL-style exit code."""
        ts, params, batch = make_problem(2, n_mbs=4)
        mesh = _fault_mesh(FaultPlan(kill_rank=1, at_step=2))
        try:
            step = mesh.distributed(ts, schedule=core.OneFOneB(2))
            for _ in range(2):  # steps 0 and 1 are healthy
                params, _ = step(params, batch)
            with pytest.raises(RuntimeError, match="died without reporting") as err:
                step(params, batch)
            assert "actor 1" in str(err.value)
            assert f"exitcode {KILL_EXIT_CODE}" in str(err.value)
        finally:
            mesh.close()

    def test_kill_after_loses_the_completed_step(self):
        """``when="after"`` executes the step worker-side, then dies
        before reporting — the driver must still see a crash, never a
        half-merged result."""
        ts, params, batch = make_problem(2, n_mbs=4)
        mesh = _fault_mesh(FaultPlan(kill_rank=0, at_step=0, when="after"))
        try:
            step = mesh.distributed(ts, schedule=core.OneFOneB(2))
            with pytest.raises(RuntimeError, match="died without reporting"):
                step(params, batch)
        finally:
            mesh.close()

    def test_one_shot_driver_kill(self):
        """The one-shot ``execute_mp`` threads the same hooks (its single
        run is step 0) and reports the death with its own diagnostic."""
        from tests.runtime.test_mp_pool_lifecycle import (
            _double,
            _one_rank_program,
            _one_rank_stores,
        )

        with pytest.raises(RuntimeError, match="died without reporting") as err:
            execute_mp(
                _one_rank_program(_double),
                _one_rank_stores(),
                watchdog_s=WATCHDOG_S,
                fault_plan=FaultPlan(kill_rank=0, at_step=0),
            )
        assert f"exitcode {KILL_EXIT_CODE}" in str(err.value)

    def test_generation_gate_spares_the_respawned_pool(self):
        """After the mesh respawns (generation 1), a generation-0 kill
        plan is inert: the same step that died now succeeds."""
        ts, params, batch = make_problem(2, n_mbs=4)
        plain = core.RemoteMesh((2,), engine="mp", mp_watchdog_s=WATCHDOG_S)
        want = plain.distributed(ts, schedule=core.OneFOneB(2))(params, batch)
        plain.close()
        mesh = _fault_mesh(FaultPlan(kill_rank=1, at_step=0))
        try:
            step = mesh.distributed(ts, schedule=core.OneFOneB(2))
            with pytest.raises(RuntimeError, match="died without reporting"):
                step(params, batch)
            got = step(params, batch)  # respawn -> generation 1 -> no fault
            assert_bit_identical(want, got)
            assert mesh._pool_generation == 2  # two pools spawned
        finally:
            mesh.close()


class TestWedge:
    def test_wedged_worker_trips_the_watchdog(self):
        """A wedged worker goes silent (no heartbeat, no error); the
        pool's no-progress watchdog must convert that into the standard
        deadlock diagnostic naming the quiet actor."""
        ts, params, batch = make_problem(2, n_mbs=4)
        mesh = _fault_mesh(
            FaultPlan([WedgeRank(rank=1, at_step=1)]),
            watchdog_s=TRIP_WATCHDOG_S,
        )
        try:
            step = mesh.distributed(ts, schedule=core.OneFOneB(2))
            params, _ = step(params, batch)  # step 0 healthy
            with pytest.raises(DeadlockError) as err:
                step(params, batch)
            msg = str(err.value)
            assert "mp pool" in msg and "watchdog" in msg
            assert "actor 1" in msg
        finally:
            mesh.close()


class TestChannelFaults:
    def test_dropped_message_surfaces_as_deadlock(self):
        """A dead channel leaves the receiver blocked on a transfer that
        cannot arrive; the watchdog diagnostic names the blocked channel."""
        ts, params, batch = make_problem(2, n_mbs=4)
        mesh = _fault_mesh(
            FaultPlan([DropMessage(rank=0, dst=1, at_step=0)]),
            watchdog_s=TRIP_WATCHDOG_S,
        )
        try:
            step = mesh.distributed(ts, schedule=core.OneFOneB(2))
            with pytest.raises(DeadlockError) as err:
                step(params, batch)
            assert "channel 0->1" in str(err.value)
        finally:
            mesh.close()

    def test_delayed_message_changes_timing_only(self):
        """Latency must never change results: a delayed channel still
        produces bit-identical values (the pairwise-FIFO contract absorbs
        reordering in wall-clock time)."""
        ts, params, batch = make_problem(2, n_mbs=4)
        want = core.RemoteMesh((2,)).distributed(ts, schedule=core.OneFOneB(2))(
            params, batch
        )
        mesh = _fault_mesh(
            FaultPlan([DelayMessage(rank=0, dst=1, delay_s=0.05)])
        )
        try:
            step = mesh.distributed(ts, schedule=core.OneFOneB(2))
            got = step(params, batch)
            assert_bit_identical(want, got)
        finally:
            mesh.close()


class TestCorruptCheckpointFault:
    def test_truncate_and_scribble_break_the_file(self, tmp_path):
        state = {"w": np.arange(64, dtype=np.float64)}
        for mode in ("truncate", "scribble"):
            path = save_checkpoint(tmp_path / f"snap-{mode}", state)
            load_checkpoint(path)  # healthy before the fault
            CorruptCheckpoint(at_snapshot=0, mode=mode).apply(path)
            with pytest.raises(CheckpointCorruptError):
                load_checkpoint(path)


class TestHygiene:
    def test_injected_kill_leaks_no_shm_segments(self):
        """An injected death discards the payloads it makes undeliverable:
        with every payload forced onto the shared-memory path, the system
        segment count returns to baseline after the crash is reported."""
        ts, params, batch = make_problem(2, n_mbs=4)
        baseline = _shm_count()
        for when in ("before", "after"):
            mesh = _fault_mesh(
                FaultPlan(kill_rank=1, at_step=1, when=when),
                mp_shm_threshold=1,
            )
            try:
                step = mesh.distributed(ts, schedule=core.OneFOneB(2))
                params2, _ = step(params, batch)
                with pytest.raises(RuntimeError, match="died without reporting"):
                    step(params2, batch)
            finally:
                mesh.close()
            assert _settle_to(baseline) <= baseline, (
                f"kill when={when!r} leaked shared-memory segments"
            )
