"""Shared test helpers: finite-difference gradient checking."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.ir import tree_flatten, tree_unflatten, value_and_grad

__all__ = ["numeric_grad", "check_grads", "rng"]


def rng(seed: int = 0) -> np.random.RandomState:
    """Deterministic RandomState for tests."""
    return np.random.RandomState(seed)


def numeric_grad(
    f: Callable[..., float],
    args: Sequence,
    argnum: int = 0,
    eps: float = 1e-3,
) -> object:
    """Central finite-difference gradient of scalar ``f`` w.r.t.
    ``args[argnum]`` (a pytree of float arrays)."""
    args = list(args)
    leaves, tree = tree_flatten(args[argnum])
    grads = []
    for li, leaf in enumerate(leaves):
        leaf = np.asarray(leaf, dtype=np.float64)
        g = np.zeros_like(leaf)
        it = np.nditer(leaf, flags=["multi_index"])
        for _ in it:
            idx = it.multi_index
            d = np.zeros_like(leaf)
            d[idx] = eps
            def _with(delta):
                new_leaves = list(leaves)
                new_leaves[li] = np.asarray(leaf + delta, dtype=np.float32)
                new_args = list(args)
                new_args[argnum] = tree_unflatten(tree, new_leaves)
                return float(f(*new_args))
            g[idx] = (_with(d) - _with(-d)) / (2 * eps)
        grads.append(g.astype(np.float32))
    return tree_unflatten(tree, grads)


def check_grads(
    f: Callable[..., float],
    args: Sequence,
    argnum: int = 0,
    atol: float = 2e-2,
    rtol: float = 2e-2,
    eps: float = 1e-3,
) -> None:
    """Assert AD gradient of ``f`` matches finite differences."""
    _, ad = value_and_grad(f, argnums=argnum)(*args)
    num = numeric_grad(f, args, argnum, eps=eps)
    ad_leaves, _ = tree_flatten(ad)
    num_leaves, _ = tree_flatten(num)
    assert len(ad_leaves) == len(num_leaves)
    for a, n in zip(ad_leaves, num_leaves):
        np.testing.assert_allclose(np.asarray(a), n, atol=atol, rtol=rtol)
