"""Full-stack integration: every paper feature combined in one workload.

Mini-GPT with tied embeddings + Adam + warmup-cosine schedule, trained on
Interleaved 1F1B x data parallelism x inner tensor-parallel SPMD — the
complete TP x PP x DP composition of Table 1 — checked against the
single-device reference, across multiple steps.
"""

import numpy as np
import pytest

from repro import core, ir
from repro.data import token_batches
from repro.models import (
    TrainState,
    TransformerConfig,
    adam_apply,
    adam_init,
    init_transformer,
    transformer_loss,
    warmup_cosine_lr,
)
from tests.helpers import rng


def build(cfg: TransformerConfig, schedule):
    lr = warmup_cosine_lr(1e-3, 4, 40)

    def train_step(state: TrainState, batch):
        def mg(mb):
            loss, grads = ir.value_and_grad(
                lambda p, m: transformer_loss(p, m, cfg)
            )(state.params, mb)
            return grads, loss

        grads, losses = core.accumulate_grads(mg, schedule)(batch)
        new_state = adam_apply(state, grads, lr(state.step))
        return new_state, losses

    params = init_transformer(rng(0), cfg)
    state = TrainState(params, adam_init(params), np.int32(0))
    return train_step, state


def max_err(a, b):
    return max(
        float(np.abs(np.asarray(x) - np.asarray(y)).max())
        for x, y in zip(ir.tree_leaves(a), ir.tree_leaves(b))
    )


class TestFullComposition:
    CFG = TransformerConfig(vocab=32, seq=8, d_model=16, n_heads=2, d_ff=32,
                            n_layers=4, n_stages=4, tie_embeddings=True)

    def test_pp_interleaved_dp_three_steps(self):
        schedule = core.Interleaved1F1B(2, 2)
        train_step, state = build(self.CFG, schedule)
        mesh = core.RemoteMesh((2, 2))
        step_fn = mesh.distributed(train_step)

        ref_state = state
        for batch in token_batches(self.CFG.vocab, self.CFG.seq, 4, 8, 3, seed=3):
            state, losses = step_fn(state, batch)
            ref_state, ref_losses = train_step(ref_state, batch)
            np.testing.assert_allclose(
                np.asarray(losses), np.asarray(ref_losses), atol=1e-5
            )
        assert max_err(state.params, ref_state.params) < 5e-4
        assert int(state.step) == 3
        assert step_fn.compiled.n_commuted >= 1  # tied embeddings commuted
        assert step_fn.compiled.n_actors == 4

    def test_pp_with_inner_tensor_parallel(self):
        cfg = TransformerConfig(vocab=32, seq=8, d_model=16, n_heads=2, d_ff=32,
                                n_layers=2, n_stages=2, tie_embeddings=False)
        schedule = core.OneFOneB(2)
        train_step, state = build(cfg, schedule)
        mesh = core.RemoteMesh(
            (2,), spmd_mesh=(("model", 2),),
            rules={"batch": None, "heads": "model", "heads_x3": "model",
                   "mlp": "model", "emb": None},
        )
        step_fn = mesh.distributed(train_step)
        batch = next(token_batches(cfg.vocab, cfg.seq, 4, 4, 1, seed=4))
        out_state, losses = step_fn(state, batch)
        ref_state, ref_losses = train_step(state, batch)
        np.testing.assert_allclose(np.asarray(losses), np.asarray(ref_losses),
                                   atol=1e-4, rtol=1e-4)
        assert max_err(out_state.params, ref_state.params) < 1e-3

    def test_gpipe_transformer(self):
        train_step, state = build(self.CFG, core.GPipe(4))
        step_fn = core.RemoteMesh((4,)).distributed(train_step)
        batch = next(token_batches(self.CFG.vocab, self.CFG.seq, 4, 4, 1, seed=5))
        out_state, _ = step_fn(state, batch)
        ref_state, _ = train_step(state, batch)
        assert max_err(out_state.params, ref_state.params) < 1e-4

    def test_loss_improves_over_training(self):
        train_step, state = build(self.CFG, core.Interleaved1F1B(2, 2))
        step_fn = core.RemoteMesh((2,)).distributed(train_step)
        first = last = None
        for batch in token_batches(self.CFG.vocab, self.CFG.seq, 4, 8, 15, seed=6):
            state, losses = step_fn(state, batch)
            loss = float(np.mean(losses))
            first = loss if first is None else first
            last = loss
        assert last < first - 0.1


class TestTimelineConsistency:
    def test_timed_numeric_run_produces_sane_timeline(self):
        from repro.runtime import LinearCost

        cfg = TransformerConfig(vocab=16, seq=6, d_model=8, n_heads=2, d_ff=16,
                                n_layers=2, n_stages=2)
        train_step, state = build(cfg, core.OneFOneB(2))
        mesh = core.RemoteMesh((2,), cost_model=LinearCost(p2p_latency=1e-3, p2p_bandwidth=1e9))
        step_fn = mesh.distributed(
            train_step, cost_fn=lambda t: 0.01 if t.kind == "fwd" else 0.02
        )
        batch = next(token_batches(cfg.vocab, cfg.seq, 4, 4, 1, seed=7))
        step_fn(state, batch)
        res = step_fn.last_result
        assert res.makespan > 0
        loop_tasks = [e for e in res.timeline
                      if e.kind == "task" and e.meta.get("phase") == "loop"]
        # 4 mbs x (fwd or fused + bwd on stage 0): stage0 has f+b, stage1 fused
        assert len(loop_tasks) == 4 * 2 + 4
        for e in loop_tasks:
            assert e.end >= e.start >= 0.0
