"""Calibration acceptance bands: the simulator against the paper's Table 1.

Absolute-number equality is not the bar (the authors ran silicon, we run a
model); the acceptance criteria are (a) every anchor within a stated band
and (b) every qualitative relationship — orderings, crossovers, remat
decisions — exact. These are the regression tests that keep the cost-model
constants honest.
"""

import pytest

from repro.perf import (
    GPT3_175B,
    LLAMA2_70B,
    jax_fsdp,
    jax_spmd_pp,
    jaxpp,
    nemo,
)

BAND = 0.12  # ±12% on step time


class TestGpt3Anchors:
    def test_jaxpp_64gpu(self):
        r = jaxpp(GPT3_175B, pp=8, tp=8, dp=1, v=6, mbs=4, n_mbs=32)
        assert r.step_time == pytest.approx(9.53, rel=BAND)
        assert r.sim.remat.kind == "none"

    @pytest.mark.parametrize("dp,step", [(2, 9.64), (4, 9.74), (16, 10.26)])
    def test_jaxpp_scaling_rows(self, dp, step):
        r = jaxpp(GPT3_175B, pp=8, tp=8, dp=dp, v=6, mbs=4, n_mbs=32)
        assert r.step_time == pytest.approx(step, rel=BAND)

    @pytest.mark.parametrize(
        "gpus,gbs,group,step",
        [(64, 128, 64, 10.63), (128, 256, 128, 10.70), (1024, 2048, 128, 11.30)],
    )
    def test_fsdp_rows(self, gpus, gbs, group, step):
        r = jax_fsdp(GPT3_175B, gpus, gbs, fsdp_group=group)
        assert r.step_time == pytest.approx(step, rel=BAND)

    def test_spmd_pp_row(self):
        r = jax_spmd_pp(GPT3_175B, pp=16, tp=4, dp=2, mbs=1, n_mbs=128)
        assert r.step_time == pytest.approx(13.96, rel=BAND)
        assert r.sim.remat.kind == "full"

    def test_nemo_row(self):
        r = nemo(GPT3_175B, pp=8, tp=4, dp=4, v=2, mbs=1, n_mbs=64)
        assert r.step_time == pytest.approx(9.78, rel=BAND)
        assert r.reported_tflops == pytest.approx(500, rel=BAND)


class TestLlamaAnchors:
    def test_jaxpp(self):
        r = jaxpp(LLAMA2_70B, pp=4, tp=8, dp=2, v=5, mbs=4, n_mbs=16)
        assert r.step_time == pytest.approx(8.42, rel=BAND)

    def test_fsdp(self):
        r = jax_fsdp(LLAMA2_70B, 64, 128, fsdp_group=64)
        assert r.step_time == pytest.approx(8.44, rel=BAND)

    def test_nemo(self):
        r = nemo(LLAMA2_70B, pp=4, tp=4, dp=4, v=4, mbs=1, n_mbs=32)
        assert r.step_time == pytest.approx(7.02, rel=BAND)


class TestQualitativeRelationships:
    """The shape claims of §5 — these must hold exactly."""

    def test_fig9_gpt3_ordering(self):
        spmd = jax_spmd_pp(GPT3_175B, pp=16, tp=4, dp=2, mbs=1, n_mbs=128)
        fsdp = jax_fsdp(GPT3_175B, 128, 256, fsdp_group=128)
        jx = jaxpp(GPT3_175B, pp=8, tp=8, dp=2, v=6, mbs=4, n_mbs=32)
        nm = nemo(GPT3_175B, pp=8, tp=4, dp=4, v=2, mbs=1, n_mbs=64)
        # SPMD PP << FSDP < JaxPP (model TFLOPS); NeMo tops the reported bars
        assert spmd.tflops < fsdp.tflops < jx.tflops
        assert nm.reported_tflops > jx.tflops

    def test_jaxpp_beats_spmd_pp_by_large_factor(self):
        # "44.6% faster than SPMD pipeline parallelism" (§5.2)
        spmd = jax_spmd_pp(GPT3_175B, pp=16, tp=4, dp=2, mbs=1, n_mbs=128)
        jx = jaxpp(GPT3_175B, pp=8, tp=8, dp=2, v=6, mbs=4, n_mbs=32)
        speedup = spmd.step_time / jx.step_time
        assert speedup == pytest.approx(1.446, rel=0.15)

    def test_jaxpp_improves_over_fsdp_about_1_11x(self):
        fsdp = jax_fsdp(GPT3_175B, 128, 256, fsdp_group=128)
        jx = jaxpp(GPT3_175B, pp=8, tp=8, dp=2, v=6, mbs=4, n_mbs=32)
        assert jx.tflops / fsdp.tflops == pytest.approx(1.11, abs=0.05)

    def test_fig9_llama_jaxpp_matches_fsdp(self):
        jx = jaxpp(LLAMA2_70B, pp=4, tp=8, dp=2, v=5, mbs=4, n_mbs=16)
        fsdp = jax_fsdp(LLAMA2_70B, 64, 128, fsdp_group=64)
        assert jx.tflops == pytest.approx(fsdp.tflops, rel=0.06)

    def test_fig9_llama_nemo_fastest(self):
        jx = jaxpp(LLAMA2_70B, pp=4, tp=8, dp=2, v=5, mbs=4, n_mbs=16)
        nm = nemo(LLAMA2_70B, pp=4, tp=4, dp=4, v=4, mbs=1, n_mbs=32)
        assert nm.step_time < jx.step_time
        ratio = jx.tflops / nm.tflops
        assert ratio == pytest.approx(0.832, abs=0.08)  # "83.2% of NeMo"

    def test_fig10_remat_dominates_spmd_pp_gap(self):
        spmd = jax_spmd_pp(GPT3_175B, pp=16, tp=4, dp=2, mbs=1, n_mbs=128)
        jx = jaxpp(GPT3_175B, pp=8, tp=8, dp=2, v=6, mbs=4, n_mbs=32)
        assert spmd.breakdown["remat"] > 0
        assert jx.breakdown["remat"] == 0.0
        # remat accounts for roughly the ~20% step-time effect of §5.3
        assert spmd.breakdown["remat"] / spmd.step_time == pytest.approx(0.20, abs=0.07)

    def test_fig8_weak_scaling_efficiencies(self):
        j64 = jaxpp(GPT3_175B, pp=8, tp=8, dp=1, v=6, mbs=4, n_mbs=32)
        j1024 = jaxpp(GPT3_175B, pp=8, tp=8, dp=16, v=6, mbs=4, n_mbs=32)
        f64 = jax_fsdp(GPT3_175B, 64, 128, fsdp_group=64)
        f1024 = jax_fsdp(GPT3_175B, 1024, 2048, fsdp_group=128)
        jaxpp_eff = j1024.tflops / j64.tflops
        fsdp_eff = f1024.tflops / f64.tflops
        assert jaxpp_eff == pytest.approx(0.9287, abs=0.035)
        assert fsdp_eff == pytest.approx(0.9397, abs=0.035)
        # JaxPP delivers higher absolute throughput at every scale
        assert j64.tflops > f64.tflops
        assert j1024.tflops > f1024.tflops

    def test_fig6_optimum_at_circ6(self):
        by_v = {
            v: jaxpp(GPT3_175B, pp=8, tp=8, dp=1, v=v, mbs=2, n_mbs=64).tflops
            for v in (1, 2, 3, 6, 12)
        }
        best = max(by_v, key=by_v.get)
        assert best in (3, 6)  # peak in the middle of the sweep
        assert by_v[6] > by_v[1]
        assert by_v[12] <= by_v[6]  # dispatch overhead bites eventually

    def test_fig6_mbs1_degrades_at_high_circ(self):
        a = jaxpp(GPT3_175B, pp=8, tp=8, dp=1, v=3, mbs=1, n_mbs=128).tflops
        b = jaxpp(GPT3_175B, pp=8, tp=8, dp=1, v=12, mbs=1, n_mbs=128).tflops
        assert b < a

    def test_fig7_throughput_rises_and_saturates(self):
        tf = [
            jaxpp(GPT3_175B, pp=8, tp=8, dp=1, v=6, mbs=2, n_mbs=m).tflops
            for m in (8, 32, 128, 512)
        ]
        assert tf[0] < tf[1] < tf[2] < tf[3]
        # saturation: the last doubling gains far less than the first
        assert (tf[3] - tf[2]) < 0.25 * (tf[1] - tf[0])

    def test_fig7_mbs_ordering_at_saturation(self):
        r = {
            mbs: jaxpp(GPT3_175B, pp=8, tp=8, dp=1, v=6, mbs=mbs, n_mbs=256).tflops
            for mbs in (1, 2, 4)
        }
        assert r[1] < r[2] < r[4]
