"""Model-arithmetic tests: parameter counts and the Table 1 metric.

The strongest evidence the FLOP accounting is right: dividing the paper's
printed step times into our model FLOPs reproduces the paper's printed
TFLOPS/device for every row that uses model accounting.
"""

import pytest

from repro.perf.transformer import (
    GPT3_175B,
    LLAMA2_70B,
    ModelSpec,
    model_flops_per_step,
    tflops_per_device,
)


class TestParameterCounts:
    def test_gpt3_is_175b(self):
        assert GPT3_175B.total_params == pytest.approx(175e9, rel=0.01)

    def test_llama2_is_70b(self):
        assert LLAMA2_70B.total_params == pytest.approx(69e9, rel=0.01)

    def test_gpt3_layer_params(self):
        # 12 * h^2 + small norms
        assert GPT3_175B.layer_params == pytest.approx(12 * 12288**2, rel=0.001)

    def test_llama_gqa_reduces_kv(self):
        full = LLAMA2_70B.hidden * LLAMA2_70B.hidden
        kv = 2 * LLAMA2_70B.hidden * LLAMA2_70B.kv_heads * LLAMA2_70B.head_dim
        assert kv == full // 4  # 8 of 64 heads -> 2*(1/8) = 1/4

    def test_head_dim(self):
        assert GPT3_175B.head_dim == 128
        assert LLAMA2_70B.head_dim == 128


class TestFlops:
    def test_six_n_rule(self):
        # fwd+bwd ~ 6 * params per token (plus attention quadratic)
        tokens = 1_000_000
        flops = 3 * GPT3_175B.fwd_flops(tokens)
        six_n = 6 * GPT3_175B.total_params * tokens
        assert flops == pytest.approx(six_n, rel=0.06)
        assert flops > six_n  # the attention term adds on top

    def test_fwd_flops_linear_in_tokens(self):
        assert GPT3_175B.fwd_flops(2048) * 2 == pytest.approx(GPT3_175B.fwd_flops(4096))

    def test_layer_split_sums(self):
        t = 4096
        total = GPT3_175B.layer_fwd_flops(t)
        assert total == GPT3_175B.layer_matmul_flops(t) + GPT3_175B.layer_attn_flops(t)

    def test_llama_attention_share_larger(self):
        # longer sequences + smaller hidden => attention is a bigger share
        def share(m: ModelSpec):
            t = m.seq
            return m.layer_attn_flops(t) / m.layer_fwd_flops(t)

        assert share(LLAMA2_70B) > share(GPT3_175B)


class TestTable1MetricDecoding:
    """step_time x TFLOPS pairs from the paper's Table 1 must be consistent
    with our FLOP accounting (the calibration anchor of the whole model)."""

    @pytest.mark.parametrize(
        "gbs,gpus,step,printed",
        [
            (128, 64, 9.53, 462),    # JaxPP
            (256, 128, 9.64, 457),
            (512, 256, 9.74, 452),
            (1024, 512, 9.71, 454),
            (2048, 1024, 10.26, 430),
            (128, 64, 10.63, 415),   # JAX FSDP
            (256, 128, 10.70, 412),
            (2048, 1024, 11.30, 390),
            (256, 128, 13.96, 316),  # JAX SPMD PP
        ],
    )
    def test_gpt3_rows(self, gbs, gpus, step, printed):
        got = tflops_per_device(GPT3_175B, gbs, step, gpus)
        assert got == pytest.approx(printed, rel=0.01)

    @pytest.mark.parametrize(
        "gbs,gpus,step,printed",
        [
            (128, 64, 8.42, 432),   # JaxPP
            (128, 64, 8.44, 431),   # JAX FSDP
            (128, 64, 7.02, 519),   # NeMo (Llama numbers use model accounting)
        ],
    )
    def test_llama_rows(self, gbs, gpus, step, printed):
        got = tflops_per_device(LLAMA2_70B, gbs, step, gpus)
        assert got == pytest.approx(printed, rel=0.01)

    def test_nemo_gpt3_row_uses_remat_accounting(self):
        # the one exception: NeMo's printed 500 at 9.78s exceeds model
        # accounting by ~11% (selective-recompute FLOPs included)
        got = tflops_per_device(GPT3_175B, 256, 9.78, 128)
        assert got == pytest.approx(451, rel=0.01)
        assert 500 / got == pytest.approx(1.11, abs=0.02)

    def test_flops_per_step_scales_with_batch(self):
        a = model_flops_per_step(GPT3_175B, 128)
        b = model_flops_per_step(GPT3_175B, 256)
        assert b == pytest.approx(2 * a)
