"""Unit tests for kernels, memory, comms, and the cluster substrate."""

import pytest

from repro.cluster import DGX_H100, EOS, H100_SXM, Topology
from repro.perf import comms
from repro.perf.kernels import JAX_KERNELS, NEMO_KERNELS
from repro.perf.memory import decide_remat, weights_optimizer_bytes
from repro.perf.transformer import GPT3_175B, LLAMA2_70B


class TestClusterSpecs:
    def test_h100_peak(self):
        assert H100_SXM.peak_flops == pytest.approx(989.4e12)

    def test_eos_size(self):
        assert EOS.n_gpus == 4608

    def test_topology_links(self):
        topo = Topology(cluster=EOS, gpus_per_actor=8)
        assert topo.actors_per_node == 1
        assert topo.link(0, 0).kind == "self"
        assert topo.link(0, 1).kind == "ib"
        # two actors per node when TP=4
        topo4 = Topology(cluster=EOS, gpus_per_actor=4)
        assert topo4.link(0, 1).kind == "nvlink"
        assert topo4.link(0, 2).kind == "ib"

    def test_link_transfer_time(self):
        topo = Topology(cluster=EOS, gpus_per_actor=8)
        link = topo.link(0, 1)
        assert link.transfer_time(50e9) == pytest.approx(1.0, rel=0.01)

    def test_topology_validate(self):
        topo = Topology(cluster=EOS, gpus_per_actor=8)
        topo.validate(576)
        with pytest.raises(ValueError):
            topo.validate(577)


class TestKernelModel:
    def test_efficiency_rises_with_mbs(self):
        e1 = JAX_KERNELS.efficiency(GPT3_175B, 1, 8)
        e2 = JAX_KERNELS.efficiency(GPT3_175B, 2, 8)
        e4 = JAX_KERNELS.efficiency(GPT3_175B, 4, 8)
        assert e1 < e2 < e4 < JAX_KERNELS.base_eff

    def test_sublinear_microbatch_time(self):
        # the paper's t2 < 2*t1 observation (§5.1.1)
        t1 = JAX_KERNELS.block_time(GPT3_175B, H100_SXM, 1, 1, 8)
        t2 = JAX_KERNELS.block_time(GPT3_175B, H100_SXM, 1, 2, 8)
        assert t2 < 2 * t1

    def test_bwd_twice_fwd(self):
        f = JAX_KERNELS.block_time(GPT3_175B, H100_SXM, 2, 2, 8, "fwd")
        b = JAX_KERNELS.block_time(GPT3_175B, H100_SXM, 2, 2, 8, "bwd")
        assert b == pytest.approx(2 * f)

    def test_nemo_flatter_at_small_mbs(self):
        jax_ratio = JAX_KERNELS.efficiency(GPT3_175B, 1, 4) / JAX_KERNELS.efficiency(GPT3_175B, 4, 4)
        nemo_ratio = NEMO_KERNELS.efficiency(GPT3_175B, 1, 4) / NEMO_KERNELS.efficiency(GPT3_175B, 4, 4)
        assert nemo_ratio > jax_ratio

    def test_tp_narrowing_lowers_efficiency(self):
        assert JAX_KERNELS.efficiency(GPT3_175B, 2, 8) >= JAX_KERNELS.efficiency(LLAMA2_70B, 1, 8)


class TestMemoryModel:
    def test_weight_bytes_gpt3_tp8_pp8(self):
        w = weights_optimizer_bytes(GPT3_175B, pp=8, tp=8)
        assert w == pytest.approx(175e9 / 64 * 16, rel=0.01)

    def test_distributed_optimizer_shards(self):
        full = weights_optimizer_bytes(GPT3_175B, 8, 4, opt_shard=1)
        sharded = weights_optimizer_bytes(GPT3_175B, 8, 4, opt_shard=4)
        assert sharded < full
        assert sharded == pytest.approx(175e9 / 32 * (4 + 3), rel=0.01)

    def test_jaxpp_config_needs_no_remat(self):
        # the crux of §5.3: interleaved 1F1B keeps few microbatches live
        d = decide_remat(GPT3_175B, H100_SXM, pp=8, tp=8, mbs=4,
                         layers_per_device=12, peak_live_microbatches=9.0)
        assert d.kind == "none" and d.fits

    def test_gpipe_config_needs_full_remat(self):
        # GPipe at GA 128: every microbatch's activations live at once
        d = decide_remat(GPT3_175B, H100_SXM, pp=16, tp=4, mbs=1,
                         layers_per_device=6, peak_live_microbatches=128)
        assert d.kind == "full"
        assert d.extra_fwd_fraction == 1.0
        assert d.fits

    def test_nemo_without_opt_sharding_would_not_fit(self):
        no_shard = decide_remat(GPT3_175B, H100_SXM, pp=8, tp=4, mbs=1,
                                layers_per_device=6, peak_live_microbatches=9, opt_shard=1)
        sharded = decide_remat(GPT3_175B, H100_SXM, pp=8, tp=4, mbs=1,
                               layers_per_device=6, peak_live_microbatches=9, opt_shard=4)
        assert sharded.kind == "none"
        assert no_shard.kind == "full" or not no_shard.fits


class TestComms:
    def test_ring_allreduce_formula(self):
        t = comms.ring_allreduce_time(100e9, 4, 50e9, 0.0)
        assert t == pytest.approx(2 * 3 / 4 * 2.0)

    def test_ring_trivial_group(self):
        assert comms.ring_allreduce_time(1e9, 1, 50e9, 1e-6) == 0.0

    def test_tp_allreduce_scales_with_mbs(self):
        t1 = comms.tp_allreduce_per_layer(GPT3_175B, DGX_H100, 1, 8, "fwd", 1e-5)
        t4 = comms.tp_allreduce_per_layer(GPT3_175B, DGX_H100, 4, 8, "fwd", 1e-5)
        assert t4 > t1
        assert t4 < 4.5 * t1  # latency amortises

    def test_tp1_is_free(self):
        assert comms.tp_allreduce_per_layer(GPT3_175B, DGX_H100, 4, 1, "fwd", 1e-5) == 0.0

    def test_stage_p2p_cross_vs_intra(self):
        cross = comms.stage_p2p_time(GPT3_175B, DGX_H100, 4, 8, cross_node=True)
        intra = comms.stage_p2p_time(GPT3_175B, DGX_H100, 4, 8, cross_node=False)
        assert cross > intra

    def test_dp_allreduce_grows_with_dp(self):
        times = [
            comms.dp_gradient_allreduce(GPT3_175B, DGX_H100, 8, 8, dp)
            for dp in (1, 2, 4, 8, 16)
        ]
        assert times[0] == 0.0
        assert all(a < b for a, b in zip(times[1:], times[2:]))
