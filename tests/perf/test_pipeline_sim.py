"""Pipeline-simulator tests: bubble behaviour, overlap, and invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.specs import DGX_H100
from repro.perf.kernels import JAX_KERNELS
from repro.perf.pipeline_sim import PipelineSimConfig, simulate_pipeline
from repro.perf.transformer import GPT3_175B, model_flops_per_step
from repro.runtime.executor import CommMode


def cfg(**kw):
    base = dict(
        model=GPT3_175B, node=DGX_H100, pp=8, tp=8, dp=1, v=1, mbs=2, n_mbs=16,
        kernels=JAX_KERNELS, schedule="1f1b", comm_mode=CommMode.ASYNC,
    )
    base.update(kw)
    return PipelineSimConfig(**base)


class TestBasics:
    def test_step_time_positive_and_bounded(self):
        r = simulate_pipeline(cfg())
        ideal = model_flops_per_step(GPT3_175B, 32) / (64 * DGX_H100.gpu.peak_flops)
        assert r.step_time > ideal  # can't beat peak
        assert r.step_time < 20 * ideal

    def test_breakdown_sums_to_makespan(self):
        r = simulate_pipeline(cfg())
        b = r.breakdown
        total = b["compute"] + b["remat"] + b["p2p"] + b["bubble"] + b["dispatch"]
        assert total == pytest.approx(r.makespan, rel=1e-6)

    def test_layers_must_divide(self):
        with pytest.raises(ValueError):
            simulate_pipeline(cfg(v=5))  # 96 / (8*5) not integer

    def test_more_microbatches_lower_bubble_fraction(self):
        r8 = simulate_pipeline(cfg(n_mbs=8))
        r64 = simulate_pipeline(cfg(n_mbs=64))
        assert r64.breakdown["bubble"] / r64.makespan < r8.breakdown["bubble"] / r8.makespan

    def test_interleaving_cuts_bubble(self):
        plain = simulate_pipeline(cfg(n_mbs=16))
        inter = simulate_pipeline(cfg(schedule="interleaved", v=6, n_mbs=16))
        assert inter.breakdown["bubble"] < plain.breakdown["bubble"]

    def test_gpipe_equals_1f1b_makespan_without_memory_pressure(self):
        # with no remat and same costs, GPipe and 1F1B have the same bubble
        small = dict(pp=4, n_mbs=8, mbs=1)
        g = simulate_pipeline(cfg(schedule="gpipe", **small))
        o = simulate_pipeline(cfg(schedule="1f1b", **small))
        if g.remat.kind == o.remat.kind == "none":
            assert g.makespan == pytest.approx(o.makespan, rel=0.02)

    def test_dp_adds_allreduce_time(self):
        r1 = simulate_pipeline(cfg(dp=1))
        r4 = simulate_pipeline(cfg(dp=4))
        assert r4.step_time > r1.step_time
        assert r4.breakdown["dp_allreduce"] > 0

    def test_sync_mode_slower_than_async(self):
        # the §5.3 claim: overlapped P2P beats the synchronous counterpart
        a = simulate_pipeline(cfg(comm_mode=CommMode.ASYNC))
        s = simulate_pipeline(cfg(comm_mode=CommMode.SYNC))
        assert s.makespan > a.makespan

    def test_p2p_bytes_scale_with_microbatches(self):
        r16 = simulate_pipeline(cfg(n_mbs=16))
        r32 = simulate_pipeline(cfg(n_mbs=32))
        assert r32.p2p_bytes == pytest.approx(2 * r16.p2p_bytes, rel=0.01)

    def test_global_batch_property(self):
        c = cfg(mbs=4, n_mbs=32, dp=2)
        assert c.global_batch == 256
        assert c.n_gpus == 128


class TestSimProperties:
    @given(
        pp=st.sampled_from([2, 4, 8]),
        v=st.sampled_from([1, 2, 3]),
        mbs=st.sampled_from([1, 2, 4]),
        m_mult=st.integers(1, 4),
    )
    @settings(max_examples=15, deadline=None)
    def test_makespan_at_least_critical_path(self, pp, v, mbs, m_mult):
        n_mbs = pp * m_mult
        c = cfg(pp=pp, v=v, n_mbs=n_mbs, mbs=mbs,
                schedule="interleaved" if v > 1 else "1f1b")
        if GPT3_175B.n_layers % (pp * v) != 0:
            return
        r = simulate_pipeline(c)
        # per-actor busy time is a lower bound on the makespan
        busy = r.breakdown["compute"] + r.breakdown["remat"] + r.breakdown["dispatch"]
        assert r.makespan >= busy - 1e-9

    @given(n_mbs=st.sampled_from([8, 16, 32, 64]))
    @settings(max_examples=8, deadline=None)
    def test_step_time_monotone_in_microbatches(self, n_mbs):
        a = simulate_pipeline(cfg(n_mbs=n_mbs)).step_time
        b = simulate_pipeline(cfg(n_mbs=2 * n_mbs)).step_time
        assert b > a
