"""Tests for the logical named-axis layer and collective edge cases."""

import numpy as np
import pytest

from repro import ir, spmd
from repro.ir import ops
from repro.spmd import resolve_names, shard
from repro.spmd.collectives import reduce_scatter_p
from repro.spmd.partitioner import _reshape_segments
from tests.helpers import rng


class TestResolveNames:
    def test_basic_mapping(self):
        spec = resolve_names(("batch", "mlp"), {"batch": "data", "mlp": "model"})
        assert spec.dims == ("data", "model")

    def test_unmapped_names_replicate(self):
        spec = resolve_names(("batch", "emb"), {"batch": "data"})
        assert spec.dims == ("data", None)

    def test_none_name_replicates(self):
        spec = resolve_names((None, "mlp"), {"mlp": "model"})
        assert spec.dims == (None, "model")

    def test_mapping_to_none(self):
        spec = resolve_names(("emb",), {"emb": None})
        assert spec.is_replicated

    def test_duplicate_mesh_axis_keeps_first(self):
        # two logical names mapped to one mesh axis: later dims replicate
        spec = resolve_names(("batch", "seq"), {"batch": "data", "seq": "data"})
        assert spec.dims == ("data", None)


class TestShardAnnotation:
    def test_identity_eager(self):
        x = rng(0).randn(3, 4).astype(np.float32)
        np.testing.assert_array_equal(shard(x, ("batch", None)), x)

    def test_rank_mismatch_rejected(self):
        with pytest.raises(ValueError):
            shard(np.zeros((2, 2), np.float32), ("batch",))

    def test_traced_constraint_recorded(self):
        def f(x):
            return shard(x, ("batch", None))

        jaxpr, _, _ = ir.trace(f, np.zeros((2, 2), np.float32))
        assert jaxpr.eqns[0].prim.name == "shard_constraint"
        assert jaxpr.eqns[0].params["names"] == ("batch", None)

    def test_constraint_differentiable(self):
        x = rng(1).randn(3).astype(np.float32)
        g = ir.grad(lambda x: (shard(x, (None,)) ** 2.0).sum())(x)
        np.testing.assert_allclose(g, 2 * x, rtol=1e-5)


class TestReduceScatter:
    def test_semantics_in_executor(self):
        # build a partitioned program by hand containing a reduce_scatter
        from repro.ir.avals import ShapedArray
        from repro.ir.jaxpr import Jaxpr, Var
        from repro.spmd.partitioner import PartitionedProgram
        from repro.spmd.spec import PSpec

        mesh = spmd.Mesh([("model", 2)])
        v_in = Var(ShapedArray((4,), ir.float32))
        v_out = Var(ShapedArray((2,), ir.float32))
        from repro.ir.jaxpr import Eqn

        jaxpr = Jaxpr(
            [v_in],
            [Eqn(reduce_scatter_p, [v_in], [v_out], dict(axis="model", dim=0, axis_size=2))],
            [v_out],
        )
        prog = PartitionedProgram(jaxpr, mesh, [PSpec((None,))], [PSpec(("model",))])
        x = np.array([1.0, 2.0, 3.0, 4.0], np.float32)
        out = spmd.SpmdExecutor(mesh).run(prog, [x])[0]
        # both devices contribute the full x; reduce-scatter sums then splits
        np.testing.assert_allclose(out, 2 * x)

    def test_eager_collective_rejected(self):
        with pytest.raises(RuntimeError, match="SPMD executor"):
            reduce_scatter_p.bind(np.zeros(4, np.float32), axis="model", dim=0, axis_size=2)


class TestReshapeSegments:
    def test_identity(self):
        assert _reshape_segments((4, 6), (4, 6)) == [((0, 1), (0, 1)), ((1, 2), (1, 2))]

    def test_split(self):
        segs = _reshape_segments((4, 6), (4, 2, 3))
        assert segs == [((0, 1), (0, 1)), ((1, 2), (1, 3))]

    def test_merge(self):
        segs = _reshape_segments((2, 3, 5), (6, 5))
        assert segs == [((0, 2), (0, 1)), ((2, 3), (1, 2))]

    def test_full_flatten(self):
        segs = _reshape_segments((2, 3), (6,))
        assert segs == [((0, 2), (0, 1))]
