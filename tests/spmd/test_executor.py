"""Executor-level tests: shard/unshard roundtrips, replica verification,
collective stats, and hypothesis properties for SPMD equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ir, spmd
from repro.ir import nn, ops
from repro.spmd.executor import shard_array, unshard_array
from tests.helpers import rng


class TestShardUnshard:
    def test_roundtrip_1d_sharding(self):
        m = spmd.Mesh([("data", 4)])
        x = rng(0).randn(8, 3).astype(np.float32)
        spec = spmd.PSpec(("data", None))
        shards = shard_array(x, spec, m)
        assert all(s.shape == (2, 3) for s in shards)
        np.testing.assert_array_equal(unshard_array(shards, spec, m), x)

    def test_roundtrip_2d_sharding(self):
        m = spmd.Mesh([("a", 2), ("b", 2)])
        x = rng(1).randn(4, 6).astype(np.float32)
        spec = spmd.PSpec(("a", "b"))
        shards = shard_array(x, spec, m)
        assert all(s.shape == (2, 3) for s in shards)
        np.testing.assert_array_equal(unshard_array(shards, spec, m), x)

    def test_replication(self):
        m = spmd.Mesh([("a", 2)])
        x = rng(2).randn(3).astype(np.float32)
        shards = shard_array(x, spmd.replicated(1), m)
        assert all(np.array_equal(s, x) for s in shards)

    def test_replica_mismatch_detected(self):
        m = spmd.Mesh([("a", 2)])
        good = rng(3).randn(3).astype(np.float32)
        bad = good + 1
        with pytest.raises(AssertionError):
            unshard_array([good, bad], spmd.replicated(1), m)

    def test_partial_replication_roundtrip(self):
        m = spmd.Mesh([("a", 2), ("b", 2)])
        x = rng(4).randn(4, 6).astype(np.float32)
        spec = spmd.PSpec(("a", None))  # replicated over b
        shards = shard_array(x, spec, m)
        np.testing.assert_array_equal(unshard_array(shards, spec, m), x)


class TestStats:
    def test_allreduce_bytes_recorded(self):
        r = rng(5)
        X = r.randn(4, 6).astype(np.float32)
        W1 = r.randn(6, 8).astype(np.float32)
        W2 = r.randn(8, 6).astype(np.float32)

        def ffn(X, W1, W2):
            H = nn.relu(spmd.shard(ops.matmul(X, W1), ("batch", "mlp")))
            return ops.matmul(H, W2)

        jaxpr, _, _ = ir.trace(ffn, X, W1, W2)
        mesh = spmd.Mesh([("model", 2)])
        prog = spmd.partition(jaxpr, mesh,
                              in_specs=[None, (None, "mlp"), ("mlp", None)],
                              rules={"mlp": "model", "batch": None})
        ex = spmd.SpmdExecutor(mesh)
        out = ex.run(prog, [X, W1, W2])[0]
        np.testing.assert_allclose(out, np.maximum(X @ W1, 0) @ W2, atol=1e-5)
        assert ex.stats.counts.get("all_reduce") == 1
        # one fp32 (4, 6) buffer per device
        assert ex.stats.bytes["all_reduce"] == 4 * 6 * 4
        assert ex.stats.total_collectives == 1

    def test_wrong_arg_count(self):
        X = rng(6).randn(2, 2).astype(np.float32)
        jaxpr, _, _ = ir.trace(lambda x: ops.tanh(x), X)
        mesh = spmd.Mesh([("a", 1)])
        prog = spmd.partition(jaxpr, mesh, in_specs=[None])
        with pytest.raises(TypeError):
            spmd.SpmdExecutor(mesh).run(prog, [X, X])


class TestSpmdEquivalenceProperty:
    """SPMD execution == single-device execution, for random programs."""

    @given(
        b=st.sampled_from([2, 4, 8]),
        e=st.sampled_from([2, 4, 6]),
        h=st.sampled_from([2, 4, 8]),
        dp=st.sampled_from([1, 2]),
        tp=st.sampled_from([1, 2]),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_ffn_random_configs(self, b, e, h, dp, tp, seed):
        r = np.random.RandomState(seed)
        X = r.randn(b * dp, e).astype(np.float32)
        W1 = r.randn(e, h * tp).astype(np.float32)
        W2 = r.randn(h * tp, e).astype(np.float32)

        def ffn(X, W1, W2):
            H = nn.gelu(spmd.shard(ops.matmul(X, W1), ("batch", "mlp")))
            return spmd.shard(ops.matmul(H, W2), ("batch", None))

        jaxpr, _, _ = ir.trace(ffn, X, W1, W2)
        mesh = spmd.Mesh([("data", dp), ("model", tp)])
        prog = spmd.partition(
            jaxpr, mesh,
            in_specs=[("batch", None), (None, "mlp"), ("mlp", None)],
            rules={"batch": "data", "mlp": "model"},
        )
        out = spmd.SpmdExecutor(mesh).run(prog, [X, W1, W2])[0]
        np.testing.assert_allclose(out, ffn(X, W1, W2), atol=2e-4, rtol=2e-4)

    @given(seed=st.integers(0, 10_000), dp=st.sampled_from([1, 2, 4]))
    @settings(max_examples=15, deadline=None)
    def test_grad_random_dp(self, seed, dp):
        r = np.random.RandomState(seed)
        X = r.randn(4 * dp, 3).astype(np.float32)
        W = r.randn(3, 5).astype(np.float32)

        def loss(W, X):
            return nn.gelu(spmd.shard(ops.matmul(X, W), ("batch", None))).sum()

        jaxpr, _, _ = ir.trace(lambda W, X: ir.value_and_grad(loss)(W, X), W, X)
        mesh = spmd.Mesh([("data", dp)])
        prog = spmd.partition(jaxpr, mesh, in_specs=[None, ("batch", None)],
                              rules={"batch": "data"})
        outs = spmd.SpmdExecutor(mesh).run(prog, [W, X])
        l, g = ir.value_and_grad(loss)(W, X)
        np.testing.assert_allclose(outs[0], l, rtol=1e-3, atol=1e-4)
        np.testing.assert_allclose(outs[1], g, rtol=1e-3, atol=1e-4)
