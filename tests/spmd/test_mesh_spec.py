"""Unit tests for Mesh and PSpec."""

import pytest

from repro.ir import ShapedArray, float32
from repro.spmd import Mesh, PSpec, local_shape, merge_specs, replicated


class TestMesh:
    def test_shape_and_names(self):
        m = Mesh([("data", 4), ("model", 8)])
        assert m.shape == (4, 8)
        assert m.axis_names == ("data", "model")
        assert m.n_devices == 32

    def test_duplicate_axis_rejected(self):
        with pytest.raises(ValueError):
            Mesh([("a", 2), ("a", 2)])

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            Mesh([("a", 0)])

    def test_device_ids_default(self):
        m = Mesh([("x", 2), ("y", 3)])
        assert m.device_ids == tuple(range(6))

    def test_device_ids_validation(self):
        with pytest.raises(ValueError):
            Mesh([("x", 2)], device_ids=[0])
        with pytest.raises(ValueError):
            Mesh([("x", 2)], device_ids=[1, 1])

    def test_coords_roundtrip(self):
        m = Mesh([("a", 2), ("b", 3), ("c", 2)])
        for d in range(m.n_devices):
            assert m.device_at(m.coords(d)) == d

    def test_coords_row_major(self):
        m = Mesh([("a", 2), ("b", 3)])
        assert m.coords(0) == (0, 0)
        assert m.coords(1) == (0, 1)
        assert m.coords(3) == (1, 0)

    def test_axis_size_lookup(self):
        m = Mesh([("data", 4), ("model", 8)])
        assert m.axis_size("model") == 8
        with pytest.raises(KeyError):
            m.axis_size("nope")

    def test_groups_cover_all_devices_once(self):
        m = Mesh([("a", 2), ("b", 3)])
        for name in ("a", "b"):
            groups = m.groups(name)
            flat = [d for g in groups for d in g]
            assert sorted(flat) == list(range(6))
            assert all(len(g) == m.axis_size(name) for g in groups)

    def test_groups_order_follows_coordinate(self):
        m = Mesh([("a", 2), ("b", 2)])
        for g in m.groups("b"):
            coords = [m.axis_coord(d, "b") for d in g]
            assert coords == [0, 1]


class TestPSpec:
    def test_replicated(self):
        s = replicated(3)
        assert s.is_replicated and s.ndim == 3

    def test_duplicate_axis_rejected(self):
        with pytest.raises(ValueError):
            PSpec(("data", "data"))

    def test_sharded_axes(self):
        s = PSpec(("data", None, "model"))
        assert s.sharded_axes == ("data", "model")
        assert s.dim_of("model") == 2

    def test_with_dim(self):
        s = PSpec((None, "model"))
        assert s.with_dim(1, None).is_replicated

    def test_local_shape(self):
        m = Mesh([("data", 4), ("model", 8)])
        a = ShapedArray((16, 32), float32)
        assert local_shape(a, PSpec(("data", "model")), m) == (4, 4)
        assert local_shape(a, PSpec((None, "model")), m) == (16, 4)
        assert local_shape(a, replicated(2), m) == (16, 32)

    def test_local_shape_divisibility(self):
        m = Mesh([("data", 3)])
        with pytest.raises(ValueError):
            local_shape(ShapedArray((4,), float32), PSpec(("data",)), m)

    def test_local_shape_rank_mismatch(self):
        m = Mesh([("data", 2)])
        with pytest.raises(ValueError):
            local_shape(ShapedArray((4, 4), float32), PSpec(("data",)), m)


class TestMergeSpecs:
    def test_defer_to_sharded(self):
        a = PSpec((None, "model"))
        b = PSpec(("data", None))
        assert merge_specs(a, b) == PSpec(("data", "model"))

    def test_agreement(self):
        a = PSpec(("data", None))
        assert merge_specs(a, a) == a

    def test_conflict_returns_none(self):
        assert merge_specs(PSpec(("data",)), PSpec(("model",))) is None

    def test_rank_mismatch(self):
        assert merge_specs(PSpec(("data",)), PSpec(("data", None))) is None
