"""Partitioner tests: DP/TP/2-D instantiations of the paper's Figure 1 FFN,
collective placement, resharding, and the universal replication fallback."""

import numpy as np
import pytest

from repro import ir, spmd
from repro.ir import nn, ops
from tests.helpers import rng

RULES = {"batch": "data", "mlp": "model", "emb": None}


def _ffn_jaxpr(b=8, e=6, m=8):
    r = rng(0)
    X = r.randn(b, e).astype(np.float32)
    W1 = r.randn(e, m).astype(np.float32)
    W2 = r.randn(m, e).astype(np.float32)

    def ffn(X, W1, W2):
        H1 = nn.relu(ops.matmul(X, W1))
        H1 = spmd.shard(H1, ("batch", "mlp"))
        H2 = ops.matmul(H1, W2)
        return spmd.shard(H2, ("batch", "emb"))

    jaxpr, _, _ = ir.trace(ffn, X, W1, W2)
    return jaxpr, (X, W1, W2), ffn(X, W1, W2)


IN_SPECS = [("batch", "emb"), ("emb", "mlp"), ("mlp", "emb")]


def _collective_names(prog):
    return [e.prim.name for e in prog.local_jaxpr.eqns
            if e.prim.name in ("all_reduce", "all_gather", "mesh_split", "reduce_scatter")]


class TestFigure1FFN:
    """The paper's Figure 1c: same model, different mesh shapes."""

    @pytest.mark.parametrize(
        "mesh_axes",
        [
            [("data", 2), ("model", 1)],  # data parallel
            [("data", 1), ("model", 2)],  # Megatron tensor parallel
            [("data", 2), ("model", 2)],  # combined 2-D
            [("data", 4), ("model", 2)],
        ],
    )
    def test_matches_single_device(self, mesh_axes):
        jaxpr, args, ref = _ffn_jaxpr()
        mesh = spmd.Mesh(mesh_axes)
        prog = spmd.partition(jaxpr, mesh, in_specs=IN_SPECS, rules=RULES)
        out = spmd.SpmdExecutor(mesh).run(prog, list(args))[0]
        np.testing.assert_allclose(out, ref, atol=1e-5)

    def test_tp_inserts_single_allreduce(self):
        # Row-parallel second matmul needs exactly one all-reduce (Megatron).
        jaxpr, args, _ = _ffn_jaxpr()
        mesh = spmd.Mesh([("data", 1), ("model", 2)])
        prog = spmd.partition(jaxpr, mesh, in_specs=IN_SPECS, rules=RULES)
        assert _collective_names(prog) == ["all_reduce"]

    def test_dp_inserts_no_collectives(self):
        jaxpr, args, _ = _ffn_jaxpr()
        mesh = spmd.Mesh([("data", 2), ("model", 1)])
        prog = spmd.partition(jaxpr, mesh, in_specs=IN_SPECS, rules=RULES)
        assert _collective_names(prog) == []  # size-1 axes elided

    def test_local_shapes_are_shards(self):
        jaxpr, _, _ = _ffn_jaxpr(b=8, e=6, m=8)
        mesh = spmd.Mesh([("data", 2), ("model", 2)])
        prog = spmd.partition(jaxpr, mesh, in_specs=IN_SPECS, rules=RULES)
        lx, lw1, lw2 = [v.aval.shape for v in prog.local_jaxpr.invars]
        assert lx == (4, 6)     # batch/2
        assert lw1 == (6, 4)    # mlp/2
        assert lw2 == (4, 6)    # mlp/2

    def test_out_specs_follow_annotations(self):
        jaxpr, _, _ = _ffn_jaxpr()
        mesh = spmd.Mesh([("data", 2), ("model", 2)])
        prog = spmd.partition(jaxpr, mesh, in_specs=IN_SPECS, rules=RULES)
        assert prog.out_specs[0].dims == ("data", None)

    def test_uneven_shard_rejected(self):
        jaxpr, _, _ = _ffn_jaxpr(b=7)
        mesh = spmd.Mesh([("data", 2), ("model", 1)])
        with pytest.raises(ValueError):
            spmd.partition(jaxpr, mesh, in_specs=IN_SPECS, rules=RULES)


class TestGradientCollectives:
    def test_dp_gradient_allreduce_emerges(self):
        # Backward of a batch-sharded matmul contracts over the batch:
        # the partitioner must emit the data-parallel gradient all-reduce
        # without anyone asking for it.
        r = rng(1)
        X = r.randn(8, 6).astype(np.float32)
        W = r.randn(6, 4).astype(np.float32)

        def loss(W, X):
            return (spmd.shard(ops.matmul(X, W), ("batch", None)) ** 2.0).sum()

        jaxpr, _, _ = ir.trace(lambda W, X: ir.value_and_grad(loss)(W, X), W, X)
        mesh = spmd.Mesh([("data", 2)])
        prog = spmd.partition(
            jaxpr, mesh, in_specs=[(None, None), ("batch", None)],
            rules={"batch": "data"},
        )
        assert "all_reduce" in _collective_names(prog)
        ex = spmd.SpmdExecutor(mesh)
        outs = ex.run(prog, [W, X])
        l, g = ir.value_and_grad(loss)(W, X)
        np.testing.assert_allclose(outs[0], l, rtol=1e-4)
        np.testing.assert_allclose(outs[1], g, rtol=1e-4, atol=1e-5)

    def test_tp_megatron_training_step(self):
        r = rng(2)
        X = r.randn(4, 6).astype(np.float32)
        params = {
            "w1": r.randn(6, 8).astype(np.float32),
            "w2": r.randn(8, 6).astype(np.float32),
        }

        def loss(p, X):
            H = nn.relu(spmd.shard(ops.matmul(X, p["w1"]), ("batch", "mlp")))
            return (ops.matmul(H, p["w2"]) ** 2.0).sum()

        jaxpr, _, _ = ir.trace(lambda p, X: ir.value_and_grad(loss)(p, X), params, X)
        mesh = spmd.Mesh([("data", 2), ("model", 2)])
        prog = spmd.partition(
            jaxpr, mesh,
            in_specs=[("emb", "mlp"), ("mlp", "emb"), ("batch", "emb")],
            rules=RULES,
        )
        outs = spmd.SpmdExecutor(mesh).run(prog, [params["w1"], params["w2"], X])
        l, g = ir.value_and_grad(loss)(params, X)
        np.testing.assert_allclose(outs[0], l, rtol=1e-4)
        np.testing.assert_allclose(outs[1], g["w1"], rtol=1e-3, atol=1e-4)
        np.testing.assert_allclose(outs[2], g["w2"], rtol=1e-3, atol=1e-4)


class TestReshardingAndFallback:
    def test_constraint_triggers_gather_then_split(self):
        r = rng(3)
        X = r.randn(8, 4).astype(np.float32)

        def f(X):
            a = spmd.shard(X, ("batch", None))
            return spmd.shard(ops.tanh(a), (None, "mlp"))

        jaxpr, _, _ = ir.trace(f, X)
        mesh = spmd.Mesh([("data", 2), ("model", 2)])
        prog = spmd.partition(jaxpr, mesh, in_specs=[("batch", None)],
                              rules={"batch": "data", "mlp": "model"})
        names = _collective_names(prog)
        assert "all_gather" in names and "mesh_split" in names
        out = spmd.SpmdExecutor(mesh).run(prog, [X])[0]
        np.testing.assert_allclose(out, np.tanh(X), atol=1e-6)

    def test_unsupported_op_falls_back_to_replication(self):
        r = rng(4)
        X = r.randn(4, 6).astype(np.float32)

        def f(X):
            a = spmd.shard(X, ("batch", None))
            # unslice has no sharded rule: partitioner must gather + replicate
            return ops.unslice(a, (8, 6), (2, 0))

        jaxpr, _, _ = ir.trace(f, X)
        mesh = spmd.Mesh([("data", 2)])
        prog = spmd.partition(jaxpr, mesh, in_specs=[("batch", None)],
                              rules={"batch": "data"})
        out = spmd.SpmdExecutor(mesh).run(prog, [X])[0]
        np.testing.assert_allclose(out, ops.unslice(X, (8, 6), (2, 0)))

    def test_reduce_over_sharded_dim_allreduces(self):
        r = rng(5)
        X = r.randn(8, 4).astype(np.float32)

        def f(X):
            return ops.reduce_sum(spmd.shard(X, ("batch", None)), axes=0)

        jaxpr, _, _ = ir.trace(f, X)
        mesh = spmd.Mesh([("data", 4)])
        prog = spmd.partition(jaxpr, mesh, in_specs=[("batch", None)], rules={"batch": "data"})
        assert "all_reduce" in _collective_names(prog)
        out = spmd.SpmdExecutor(mesh).run(prog, [X])[0]
        np.testing.assert_allclose(out, X.sum(0), rtol=1e-5)

    def test_reduce_max_over_sharded_dim(self):
        r = rng(6)
        X = r.randn(8, 4).astype(np.float32)

        def f(X):
            return ops.reduce_max(spmd.shard(X, ("batch", None)), axes=0)

        jaxpr, _, _ = ir.trace(f, X)
        mesh = spmd.Mesh([("data", 2)])
        prog = spmd.partition(jaxpr, mesh, in_specs=[("batch", None)], rules={"batch": "data"})
        out = spmd.SpmdExecutor(mesh).run(prog, [X])[0]
        np.testing.assert_allclose(out, X.max(0))


class TestStructuralRules:
    def test_transpose_permutes_spec(self):
        r = rng(7)
        X = r.randn(8, 4).astype(np.float32)

        def f(X):
            return ops.transpose(spmd.shard(X, ("batch", None)))

        jaxpr, _, _ = ir.trace(f, X)
        mesh = spmd.Mesh([("data", 2)])
        prog = spmd.partition(jaxpr, mesh, in_specs=[("batch", None)], rules={"batch": "data"})
        assert prog.out_specs[0].dims == (None, "data")
        out = spmd.SpmdExecutor(mesh).run(prog, [X])[0]
        np.testing.assert_allclose(out, X.T)

    def test_reshape_split_heads_keeps_sharding(self):
        # (B, H) -> (B, nh, hd) with H sharded: sharding moves to nh.
        r = rng(8)
        X = r.randn(4, 8).astype(np.float32)

        def f(X):
            a = spmd.shard(X, (None, "mlp"))
            return ops.reshape(a, (4, 4, 2))

        jaxpr, _, _ = ir.trace(f, X)
        mesh = spmd.Mesh([("model", 2)])
        prog = spmd.partition(jaxpr, mesh, in_specs=[(None, "mlp")], rules={"mlp": "model"})
        assert prog.out_specs[0].dims == (None, "model", None)
        assert "all_gather" not in _collective_names(prog)
        out = spmd.SpmdExecutor(mesh).run(prog, [X])[0]
        np.testing.assert_allclose(out, X.reshape(4, 4, 2))

    def test_reshape_merge_heads(self):
        r = rng(9)
        X = r.randn(4, 4, 2).astype(np.float32)

        def f(X):
            a = spmd.shard(X, (None, "mlp", None))
            return ops.reshape(a, (4, 8))

        jaxpr, _, _ = ir.trace(f, X)
        mesh = spmd.Mesh([("model", 2)])
        prog = spmd.partition(jaxpr, mesh, in_specs=[(None, "mlp", None)], rules={"mlp": "model"})
        assert prog.out_specs[0].dims == (None, "model")
        out = spmd.SpmdExecutor(mesh).run(prog, [X])[0]
        np.testing.assert_allclose(out, X.reshape(4, 8))

    def test_reshape_incompatible_gathers(self):
        # microbatch reshape (B, E) -> (2, B/2, E) with B sharded on an axis
        # that doesn't divide the new leading dim: must gather, stay correct.
        r = rng(10)
        X = r.randn(6, 4).astype(np.float32)

        def f(X):
            a = spmd.shard(X, ("batch", None))
            return ops.reshape(a, (2, 3, 4))

        jaxpr, _, _ = ir.trace(f, X)
        mesh = spmd.Mesh([("data", 3)])
        prog = spmd.partition(jaxpr, mesh, in_specs=[("batch", None)], rules={"batch": "data"})
        out = spmd.SpmdExecutor(mesh).run(prog, [X])[0]
        np.testing.assert_allclose(out, X.reshape(2, 3, 4))

    def test_take_embedding_sharded_hidden(self):
        r = rng(11)
        table = r.randn(10, 8).astype(np.float32)
        idx = np.array([[1, 2], [3, 4]], np.int32)

        def f(table, idx):
            t = spmd.shard(table, (None, "emb"))
            return ops.take(t, idx)

        jaxpr, _, _ = ir.trace(f, table, idx)
        mesh = spmd.Mesh([("model", 2)])
        prog = spmd.partition(jaxpr, mesh, in_specs=[(None, "emb"), (None, None)],
                              rules={"emb": "model"})
        assert prog.out_specs[0].dims == (None, None, "model")
        out = spmd.SpmdExecutor(mesh).run(prog, [table, idx])[0]
        np.testing.assert_allclose(out, table[idx])

    def test_concatenate_requires_concat_dim_replicated(self):
        r = rng(12)
        a = r.randn(4, 3).astype(np.float32)
        b = r.randn(4, 3).astype(np.float32)

        def f(a, b):
            return ops.concatenate([spmd.shard(a, ("batch", None)), b], axis=0)

        jaxpr, _, _ = ir.trace(f, a, b)
        mesh = spmd.Mesh([("data", 2)])
        prog = spmd.partition(jaxpr, mesh, in_specs=[("batch", None), (None, None)],
                              rules={"batch": "data"})
        out = spmd.SpmdExecutor(mesh).run(prog, [a, b])[0]
        np.testing.assert_allclose(out, np.concatenate([a, b], 0))

    def test_slice_full_dim_keeps_sharding(self):
        r = rng(13)
        X = r.randn(8, 6).astype(np.float32)

        def f(X):
            a = spmd.shard(X, ("batch", None))
            return ops.slice_(a, (0, 2), (8, 5))

        jaxpr, _, _ = ir.trace(f, X)
        mesh = spmd.Mesh([("data", 2)])
        prog = spmd.partition(jaxpr, mesh, in_specs=[("batch", None)], rules={"batch": "data"})
        assert prog.out_specs[0].dims == ("data", None)
        out = spmd.SpmdExecutor(mesh).run(prog, [X])[0]
        np.testing.assert_allclose(out, X[:, 2:5])


class TestSoftmaxAndNorms:
    def test_softmax_batch_sharded(self):
        r = rng(14)
        X = r.randn(8, 10).astype(np.float32)

        def f(X):
            return nn.softmax(spmd.shard(X, ("batch", None)))

        jaxpr, _, _ = ir.trace(f, X)
        mesh = spmd.Mesh([("data", 2)])
        prog = spmd.partition(jaxpr, mesh, in_specs=[("batch", None)], rules={"batch": "data"})
        out = spmd.SpmdExecutor(mesh).run(prog, [X])[0]
        np.testing.assert_allclose(out, nn.softmax(X), atol=1e-6)

    def test_layernorm_batch_sharded(self):
        r = rng(15)
        X = r.randn(8, 16).astype(np.float32)
        g, b = np.ones(16, np.float32), np.zeros(16, np.float32)

        def f(X, g, b):
            return nn.layer_norm(spmd.shard(X, ("batch", None)), g, b)

        jaxpr, _, _ = ir.trace(f, X, g, b)
        mesh = spmd.Mesh([("data", 4)])
        prog = spmd.partition(jaxpr, mesh,
                              in_specs=[("batch", None), (None,), (None,)],
                              rules={"batch": "data"})
        out = spmd.SpmdExecutor(mesh).run(prog, [X, g, b])[0]
        np.testing.assert_allclose(out, nn.layer_norm(X, g, b), atol=1e-5)
