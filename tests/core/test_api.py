"""Driver API tests: RemoteMesh validation, StepFunction compile caching."""

import numpy as np
import pytest

from repro import core, ir
from repro.ir import nn, ops, pipeline_yield
from tests.helpers import rng


def _problem(n_mbs=4, mbsz=6, d=4, seed=0):
    r = rng(seed)
    X = r.randn(n_mbs, mbsz, d).astype(np.float32)
    Y = r.randn(n_mbs, mbsz, d).astype(np.float32)
    params = {
        "w0": (r.randn(d, d) * 0.4).astype(np.float32),
        "w1": (r.randn(d, d) * 0.4).astype(np.float32),
    }

    def loss_fn(p, mb):
        x, y = mb
        h = pipeline_yield(nn.relu(ops.matmul(x, p["w0"])))
        h = ops.matmul(h, p["w1"])
        return ops.mean((h - y) ** 2.0)

    def train_step(params, batch):
        def mg(mb):
            loss, grads = ir.value_and_grad(loss_fn)(params, mb)
            return grads, loss

        grads, loss = core.accumulate_grads(mg, None)(batch)
        new = ir.tree_map(lambda w, g: ops.sub(w, ops.mul(0.1, g)), params, grads)
        return new, loss

    return train_step, params, (X, Y)


class TestRemoteMesh:
    def test_shapes(self):
        assert core.RemoteMesh((3,)).n_actors == 3
        m = core.RemoteMesh((2, 4))
        assert m.dp_size == 2 and m.n_pipeline_actors == 4 and m.n_actors == 8

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            core.RemoteMesh((1, 2, 3))

    def test_repr_uncompiled(self):
        train_step, *_ = _problem()
        s = core.RemoteMesh((2,)).distributed(train_step, schedule=core.OneFOneB(2))
        assert "uncompiled" in repr(s)


class TestStepFunctionCaching:
    def test_compiles_once_for_same_shapes(self):
        train_step, params, batch = _problem()
        step = core.RemoteMesh((2,)).distributed(train_step, schedule=core.OneFOneB(2))
        step(params, batch)
        first = step.compiled
        step(params, batch)
        assert step.compiled is first  # cached

    def test_recompiles_on_shape_change(self):
        train_step, params, batch = _problem(n_mbs=4)
        step = core.RemoteMesh((2,)).distributed(train_step, schedule=core.OneFOneB(2))
        step(params, batch)
        first = step.compiled
        _, _, batch8 = _problem(n_mbs=8)
        step(params, batch8)
        assert step.compiled is not first

    def test_results_consistent_across_recompiles(self):
        train_step, params, batch4 = _problem(n_mbs=4, seed=3)
        _, _, batch8 = _problem(n_mbs=8, seed=4)
        step = core.RemoteMesh((2,)).distributed(train_step, schedule=core.OneFOneB(2))
        for batch in (batch4, batch8, batch4):
            out_p, _ = step(params, batch)
            ref_p, _ = train_step(params, batch)
            for k in params:
                np.testing.assert_allclose(out_p[k], ref_p[k], atol=1e-5)

    def test_peak_bytes_requires_run(self):
        train_step, *_ = _problem()
        step = core.RemoteMesh((2,)).distributed(train_step, schedule=core.OneFOneB(2))
        with pytest.raises(RuntimeError):
            _ = step.peak_bytes_per_actor

    def test_last_result_populated(self):
        train_step, params, batch = _problem()
        step = core.RemoteMesh((2,)).distributed(train_step, schedule=core.OneFOneB(2))
        step(params, batch)
        assert step.last_result is not None
        assert step.last_result.p2p_count > 0
        assert len(step.peak_bytes_per_actor) == 2
