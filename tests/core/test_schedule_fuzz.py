"""Property/fuzz suite for the graph-check / executor contract.

Randomly mutate valid schedules — drop, duplicate, reorder, and misplace
slots in their per-actor unit tables — and assert the dichotomy the stack
promises:

- every mutant either **fails** ``validate_schedule`` (the ScheduleIR
  table/graph checks reject it before it reaches the runtime), or
- **executes to the reference result** — compile + run succeed and every
  engine produces a result bit-identical to the reference engine
  (``"roundrobin"``) running the *same* mutant, and numerically equal to
  the unmutated schedule up to floating-point summation order (a valid
  reorder may legitimately accumulate microbatch gradients in a
  different order, which is an FP-rounding difference, not a bug).
  The slow lane extends the cross-engine check to the process-per-rank
  ``"mp"`` backend.

There is no third outcome: a schedule that passes validation and then
crashes, hangs, or silently computes something different is exactly the
bug class this suite exists to catch.  All randomness flows from seeded
``np.random.RandomState`` instances passed in explicitly — no ambient
entropy, every failure reproduces.
"""

import numpy as np
import pytest

from repro import core
from repro.core.schedule_ir import lower_schedule
from repro.core.schedules import BWD, BWD_I, BWD_W, FWD, Schedule, Unit
from tests.core.test_linear_backend import assert_bit_identical, make_problem

N_MBS = 4


class MutantSchedule(Schedule):
    """A schedule defined by an explicit (possibly corrupted) unit table.

    Placement and backward-mode metadata delegate to the base schedule;
    only the per-actor orders differ.  Declares no activation bound — the
    property under test is the validity/equivalence dichotomy, not the
    base schedule's memory promise.
    """

    def __init__(self, base: Schedule, unit_lists: list[list[Unit]]):
        self.base = base
        self.n_actors = base.n_actors
        self.n_stages = base.n_stages
        self.backward_split = base.backward_split
        self.bwd_input_fraction = base.bwd_input_fraction
        self._units = [list(seq) for seq in unit_lists]

    def actor_of_stage(self, stage: int) -> int:
        return self.base.actor_of_stage(stage)

    def activation_bound(self, rank: int, n_mbs: int):
        return None

    def units(self, n_mbs: int) -> list[list[Unit]]:
        return [list(seq) for seq in self._units]

    @property
    def name(self) -> str:
        return f"mutant({self.base.name})"


def mutate(base: Schedule, n_mbs: int, rng: np.random.RandomState) -> MutantSchedule:
    """One random structural mutation of ``base``'s unit table."""
    table = [list(seq) for seq in base.units(n_mbs)]
    op = rng.choice(
        ["drop", "dup", "swap_adjacent", "swap_any", "move", "cross_rank", "rekind"]
    )
    rank = int(rng.randint(len(table)))
    row = table[rank]
    i = int(rng.randint(len(row)))
    if op == "drop":
        del row[i]
    elif op == "dup":
        row.insert(int(rng.randint(len(row) + 1)), row[i])
    elif op == "swap_adjacent":
        j = min(i + 1, len(row) - 1)
        row[i], row[j] = row[j], row[i]
    elif op == "swap_any":
        j = int(rng.randint(len(row)))
        row[i], row[j] = row[j], row[i]
    elif op == "move":
        u = row.pop(i)
        row.insert(int(rng.randint(len(row) + 1)), u)
    elif op == "cross_rank":
        other = int(rng.randint(len(table)))
        table[other].insert(int(rng.randint(len(table[other]) + 1)), row.pop(i))
    elif op == "rekind":
        u = row[i]
        kinds = (FWD, BWD_I, BWD_W) if base.backward_split else (FWD, BWD)
        new_kind = kinds[int(rng.randint(len(kinds)))]
        row[i] = Unit(u.mb, u.stage, new_kind)
    return MutantSchedule(base, table)


BASES = [core.OneFOneB(3), core.GPipe(3), core.ZBH1(3)]


def _reference(base: Schedule):
    ts, params, batch = make_problem(base.n_stages, n_mbs=N_MBS)
    want = core.RemoteMesh((base.n_actors,)).distributed(ts, schedule=base)(
        params, batch
    )
    return ts, params, batch, want


def _assert_allclose(a, b):
    from repro import ir

    fa, ta = ir.tree_flatten(a)
    fb, tb = ir.tree_flatten(b)
    assert repr(ta) == repr(tb)
    for x, y in zip(fa, fb):
        np.testing.assert_allclose(
            np.asarray(x), np.asarray(y), rtol=1e-4, atol=1e-5
        )


def _classify_and_check(base, ts, params, batch, want, mutant, engines):
    """Returns ``"invalid"`` or ``"valid"`` after asserting the contract."""
    try:
        core.validate_schedule(mutant, N_MBS)
    except ValueError:
        return "invalid"
    # reference engine runs the *same* mutant: cross-engine results must
    # be bit-identical (dataflow determinism) ...
    ref_mesh = core.RemoteMesh((mutant.n_actors,), engine="roundrobin")
    ref = ref_mesh.distributed(ts, schedule=mutant)(params, batch)
    for engine in engines:
        kw = {"mp_watchdog_s": 60.0} if engine == "mp" else {}
        mesh = core.RemoteMesh((mutant.n_actors,), engine=engine, **kw)
        got = mesh.distributed(ts, schedule=mutant)(params, batch)
        assert_bit_identical(ref, got)
    # ... and numerically equal to the unmutated schedule up to the FP
    # rounding a reordered gradient accumulation is allowed to introduce
    _assert_allclose(want, ref)
    return "valid"


class TestScheduleFuzz:
    @pytest.mark.parametrize("base", BASES, ids=lambda s: s.name)
    def test_mutants_fail_validation_or_execute_to_reference(self, base):
        rng = np.random.RandomState(0xA5 + base.n_stages)
        ts, params, batch, want = _reference(base)
        outcomes = {"invalid": 0, "valid": 0}
        for _ in range(40):
            mutant = mutate(base, N_MBS, rng)
            outcome = _classify_and_check(
                base, ts, params, batch, want, mutant,
                engines=("event", "roundrobin"),
            )
            outcomes[outcome] += 1
        # the fuzzer must genuinely exercise both sides of the dichotomy
        assert outcomes["invalid"] > 0, outcomes
        assert outcomes["valid"] > 0, outcomes

    def test_identity_mutation_is_valid(self):
        base = core.OneFOneB(3)
        mutant = MutantSchedule(base, base.units(N_MBS))
        core.validate_schedule(mutant, N_MBS)

    def test_dropped_slot_always_invalid(self):
        rng = np.random.RandomState(7)
        base = core.OneFOneB(3)
        table = [list(seq) for seq in base.units(N_MBS)]
        del table[int(rng.randint(3))][0]
        with pytest.raises(ValueError, match="incomplete"):
            core.validate_schedule(MutantSchedule(base, table), N_MBS)

    def test_duplicated_slot_always_invalid(self):
        base = core.OneFOneB(3)
        table = [list(seq) for seq in base.units(N_MBS)]
        table[0].append(table[0][0])
        with pytest.raises(ValueError, match="twice"):
            core.validate_schedule(MutantSchedule(base, table), N_MBS)

    def test_misplaced_slot_always_invalid(self):
        base = core.OneFOneB(3)
        table = [list(seq) for seq in base.units(N_MBS)]
        table[1].append(table[0].pop(0))
        with pytest.raises(ValueError, match="belongs to actor"):
            core.validate_schedule(MutantSchedule(base, table), N_MBS)

    @pytest.mark.slow
    @pytest.mark.parametrize("base", BASES[:2], ids=lambda s: s.name)
    def test_valid_mutants_hold_on_mp_engine(self, base):
        """A handful of valid mutants execute bit-identically on real OS
        processes too — the fuzz contract extends to ``engine="mp"``."""
        rng = np.random.RandomState(0xC3)
        ts, params, batch, want = _reference(base)
        checked = 0
        for _ in range(60):
            if checked >= 3:
                break
            mutant = mutate(base, N_MBS, rng)
            try:
                core.validate_schedule(mutant, N_MBS)
            except ValueError:
                continue
            outcome = _classify_and_check(
                base, ts, params, batch, want, mutant, engines=("mp",)
            )
            assert outcome == "valid"
            checked += 1
        assert checked == 3


# -- cross-rank dependency-edge mutations (IR-level fuzzing) ---------------
#
# The unit-table fuzzer above corrupts *what runs where*; this half
# corrupts the *resolved edges themselves* — the dicts every consumer
# (compiler, executor, simulator) walks.  All tampering ops are
# *coherent*: the forward (``_deps``) and reverse (``_consumers``) tables
# are updated together, so a checker that merely cross-referenced the two
# tables would pass.  Only recomputing the edges from the unit dependency
# structure (``ScheduleIR.check_edges``, run by ``validate``) can notice.
# The dichotomy is sharper here than for unit tables: *every* genuine
# edge change diverges from the unit structure and must be rejected; the
# only survivors are no-op rebuilds, which must execute bit-identically.


def _slot_at(ir, key):
    rank, index = key
    return ir.slots[rank][index]


def _cross_edge_sites(ir):
    """Every (consumer key, dep position, producing slot) crossing ranks."""
    return [
        (key, i, d)
        for key, deps in ir._deps.items()
        for i, d in enumerate(deps)
        if d.rank != key[0]
    ]


def mutate_edges(ir, rng: np.random.RandomState) -> str:
    """One random in-place mutation of the IR's edge tables; returns the
    op applied (``"rebuild_noop"`` is the control: no semantic change)."""
    op = str(rng.choice(
        ["drop", "redirect", "duplicate", "phantom_consumer", "rebuild_noop"]
    ))
    if op == "rebuild_noop":
        ir._deps = {k: tuple(v) for k, v in ir._deps.items()}
        ir._consumers = {k: list(v) for k, v in ir._consumers.items()}
        return op
    sites = _cross_edge_sites(ir)
    key, i, dep = sites[int(rng.randint(len(sites)))]
    consumer = _slot_at(ir, key)
    deps = list(ir._deps[key])
    if op == "drop":
        deps.pop(i)
        ir._consumers[(dep.rank, dep.index)].remove(consumer)
    elif op == "redirect":
        row = ir.slots[dep.rank]
        new_dep = row[(dep.index + 1 + int(rng.randint(len(row) - 1))) % len(row)]
        deps[i] = new_dep
        ir._consumers[(dep.rank, dep.index)].remove(consumer)
        ir._consumers.setdefault((new_dep.rank, new_dep.index), []).append(consumer)
    elif op == "duplicate":
        deps.append(dep)
        ir._consumers[(dep.rank, dep.index)].append(consumer)
    elif op == "phantom_consumer":
        producer = (dep.rank, dep.index)
        ir._consumers[producer] = ir._consumers[producer] + [consumer]
    if op != "phantom_consumer":
        ir._deps[key] = tuple(deps)
    return op


class TestEdgeFuzz:
    @pytest.mark.parametrize("base", BASES, ids=lambda s: s.name)
    def test_edge_mutants_rejected_or_bit_identical(self, base):
        rng = np.random.RandomState(0xE5 + base.n_stages)
        ts, params, batch, want = _reference(base)
        outcomes = {"invalid": 0, "valid": 0}
        for _ in range(30):
            ir = lower_schedule(base, N_MBS)
            op = mutate_edges(ir, rng)
            try:
                ir.validate()
            except ValueError:
                assert op != "rebuild_noop"
                outcomes["invalid"] += 1
                continue
            # a survivor's edge tables provably equal the canonical
            # lowering, so executing the schedule *is* executing the
            # mutant IR — and it must stay bit-identical
            assert op == "rebuild_noop"
            outcomes["valid"] += 1
            got = core.RemoteMesh((base.n_actors,)).distributed(
                ts, schedule=base
            )(params, batch)
            assert_bit_identical(want, got)
        assert outcomes["invalid"] > 0, outcomes
        assert outcomes["valid"] > 0, outcomes

    def test_dropped_cross_edge_rejected(self):
        ir = lower_schedule(core.OneFOneB(3), N_MBS)
        key, i, dep = _cross_edge_sites(ir)[0]
        deps = list(ir._deps[key])
        deps.pop(i)
        ir._deps[key] = tuple(deps)
        ir._consumers[(dep.rank, dep.index)].remove(_slot_at(ir, key))
        with pytest.raises(ValueError, match="diverge"):
            ir.validate()

    def test_redirected_cross_edge_rejected(self):
        ir = lower_schedule(core.OneFOneB(3), N_MBS)
        key, i, dep = _cross_edge_sites(ir)[-1]
        consumer = _slot_at(ir, key)
        row = ir.slots[dep.rank]
        new_dep = row[(dep.index + 1) % len(row)]
        deps = list(ir._deps[key])
        deps[i] = new_dep
        ir._deps[key] = tuple(deps)
        ir._consumers[(dep.rank, dep.index)].remove(consumer)
        ir._consumers.setdefault((new_dep.rank, new_dep.index), []).append(consumer)
        with pytest.raises(ValueError, match="diverge"):
            ir.validate()

    def test_duplicated_cross_edge_rejected(self):
        ir = lower_schedule(core.ZBH1(3), N_MBS)
        key, _, dep = _cross_edge_sites(ir)[0]
        ir._deps[key] = tuple(list(ir._deps[key]) + [dep])
        ir._consumers[(dep.rank, dep.index)].append(_slot_at(ir, key))
        with pytest.raises(ValueError, match="diverge"):
            ir.validate()

    def test_phantom_consumer_rejected(self):
        ir = lower_schedule(core.GPipe(3), N_MBS)
        key, _, dep = _cross_edge_sites(ir)[0]
        ir._consumers[(dep.rank, dep.index)].append(_slot_at(ir, key))
        with pytest.raises(ValueError, match="consumer edges"):
            ir.validate()

    def test_truncated_dep_table_rejected(self):
        ir = lower_schedule(core.OneFOneB(3), N_MBS)
        del ir._deps[next(iter(ir._deps))]
        with pytest.raises(ValueError, match="dependency table"):
            ir.validate()

    def test_unscheduled_dep_rejected(self):
        ir = lower_schedule(core.OneFOneB(3), N_MBS)
        key, _, dep = _cross_edge_sites(ir)[0]
        del ir._slot_of[(dep.unit.mb, dep.unit.stage, dep.unit.kind)]
        with pytest.raises(ValueError, match="unscheduled"):
            ir.validate()

    def test_edge_check_passes_every_canonical_lowering(self):
        for base in BASES:
            lower_schedule(base, N_MBS).check_edges()

    def test_edge_fuzz_survivors_hold_on_mp_pool(self):
        """The mp-pool lane: a rebuild-noop mutant's schedule runs through
        the warm actor pool bit-identically to the event engine."""
        base = core.OneFOneB(3)
        ts, params, batch, want = _reference(base)
        ir = lower_schedule(base, N_MBS)
        assert mutate_edges(ir, _NoopRng()) == "rebuild_noop"
        ir.validate()
        mesh = core.RemoteMesh((base.n_actors,), engine="mp", mp_watchdog_s=60.0)
        try:
            got = mesh.distributed(ts, schedule=base)(params, batch)
            assert_bit_identical(want, got)
        finally:
            mesh.close()


class _NoopRng:
    """Degenerate RNG: always picks ``rebuild_noop``."""

    def choice(self, ops):
        return "rebuild_noop"

    def randint(self, n):  # pragma: no cover - unused for the noop op
        return 0


# -- optimizer-lane fuzzing (algebraic rewrites, ir/opt.py) ----------------
#
# The fuzzers above corrupt schedules and edges; this lane stresses the
# *optimizer* with adversarial stage bodies — duplicated subtrees (CSE
# must merge them without changing bits), duplicated yields of one value
# (boundary dedup + out_aliases routing), and stop_gradient chains
# (identity elision).  The dichotomy here is exactness: at opt_level<=1
# every randomly generated problem must compile and run bit-identically
# to its unoptimized twin on every engine; at opt_level=2 (reassociation
# changes FP summation order) results must stay allclose.


def random_opt_problem(seed, n_stages=3, d=6, mbsz=4, n_mbs=4):
    """A random MLP train step whose stage bodies embed optimizer bait."""
    r = np.random.RandomState(seed)
    from repro.ir import nn, ops, pipeline_yield

    params = {
        f"w{i}": (r.randn(d, d) * 0.4).astype(np.float32)
        for i in range(n_stages)
    }
    X = r.randn(n_mbs, mbsz, d).astype(np.float32)
    Y = r.randn(n_mbs, mbsz, d).astype(np.float32)
    tricks = [
        str(r.choice(["dup", "dup_yield", "stopgrad", "plain"]))
        for _ in range(n_stages)
    ]
    # a duplicated yield is an extra stage boundary (stages = yields + 1):
    # the schedule must cover the widened pipeline
    n_model_stages = n_stages + sum(
        1 for i, t in enumerate(tricks) if t == "dup_yield" and i < n_stages - 1
    )

    def loss_fn(p, mb):
        x, y = mb
        h = x
        for i in range(n_stages):
            w = p[f"w{i}"]
            last = i == n_stages - 1
            if tricks[i] == "dup":
                # same subtree twice: CSE bait (identical bits by IEEE)
                a = ops.matmul(h, w)
                b = ops.matmul(h, w)
                h = ops.mul(ops.add(a, b), 0.5)
            elif tricks[i] == "stopgrad":
                h = ops.add(
                    ops.matmul(h, w),
                    ops.mul(ops.stop_gradient(ops.matmul(h, w)), 0.25),
                )
            else:
                h = ops.matmul(h, w)
            if not last:
                h = nn.relu(h)
                if tricks[i] == "dup_yield":
                    # one value yielded twice: boundary-dedup bait
                    h = ops.mul(
                        ops.add(pipeline_yield(h), pipeline_yield(h)), 0.5
                    )
                else:
                    h = pipeline_yield(h)
        return ops.mean((h - y) ** 2.0)

    def train_step(p, batch):
        from repro import ir

        def microbatch_grads(mb):
            loss, grads = ir.value_and_grad(loss_fn)(p, mb)
            return grads, loss

        grads, loss = core.accumulate_grads(microbatch_grads, None)(batch)
        new = ir.tree_map(
            lambda w, g: w - np.float32(0.1) * g, p, grads
        )
        return new, loss

    return train_step, params, (X, Y), tricks, n_model_stages


class TestOptimizerFuzz:
    def test_level1_bit_identical_across_random_problems(self):
        optimized_somewhere = 0
        for seed in range(8):
            ts, params, batch, tricks, n_model = random_opt_problem(seed)
            base = core.OneFOneB(n_model)
            outs = {}
            for lvl in (False, True):
                mesh = core.RemoteMesh((base.n_actors,))
                step = mesh.distributed(ts, schedule=base, optimize=lvl)
                outs[lvl] = step(params, batch)
                if lvl:
                    rep = step.compiled.opt_report
                    if rep.eqns_after < rep.eqns_before:
                        optimized_somewhere += 1
            assert_bit_identical(outs[False], outs[True]), (seed, tricks)
        # the bait must actually trigger rewrites, not just pass through
        assert optimized_somewhere > 0

    def test_level2_allclose_across_random_problems(self):
        for seed in range(3):
            ts, params, batch, tricks, n_model = random_opt_problem(seed + 100)
            base = core.OneFOneB(n_model)
            mesh0 = core.RemoteMesh((base.n_actors,))
            want = mesh0.distributed(ts, schedule=base, optimize=False)(
                params, batch
            )
            mesh2 = core.RemoteMesh((base.n_actors,))
            got = mesh2.distributed(ts, schedule=base, optimize=2)(
                params, batch
            )
            _assert_allclose(want, got)

    def test_level1_fuzz_problem_holds_on_mp_pool(self):
        """One randomly generated bait problem through the warm actor
        pool: the optimized programs (memo prologues included) execute on
        real OS processes bit-identically to the event engine."""
        ts, params, batch, _, n_model = random_opt_problem(5)
        base = core.OneFOneB(n_model)
        want = core.RemoteMesh((base.n_actors,)).distributed(
            ts, schedule=base, optimize=True
        )(params, batch)
        mesh = core.RemoteMesh(
            (base.n_actors,), engine="mp", mp_watchdog_s=60.0
        )
        try:
            got = mesh.distributed(ts, schedule=base, optimize=True)(
                params, batch
            )
            assert_bit_identical(want, got)
        finally:
            mesh.close()
