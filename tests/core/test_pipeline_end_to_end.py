"""The headline correctness claim: MPMD pipeline execution over any
schedule / actor count / DP width == single-device reference, exactly."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ir, core
from repro.ir import nn, ops, pipeline_yield
from tests.helpers import rng


def make_problem(n_stages, n_mbs=4, mbsz=8, d=6, tied=False, seed=1):
    r = rng(seed)
    X = r.randn(n_mbs, mbsz, d).astype(np.float32)
    Y = r.randn(n_mbs, mbsz, d).astype(np.float32)
    params = {f"w{i}": (r.randn(d, d) * 0.3).astype(np.float32) for i in range(n_stages)}

    def loss_fn(p, mb):
        x, y = mb
        h = x
        for i in range(n_stages):
            w = p["w0"] if (tied and i == n_stages - 1) else p[f"w{i}"]
            h = nn.relu(ops.matmul(h, w)) if i < n_stages - 1 else ops.matmul(h, w)
            if i < n_stages - 1:
                h = pipeline_yield(h)
        return ops.mean((h - y) ** 2.0)

    def train_step(params, batch):
        def microbatch_grads(mb):
            loss, grads = ir.value_and_grad(loss_fn)(params, mb)
            return grads, loss

        grads, loss = core.accumulate_grads(microbatch_grads, None)(batch)
        new = ir.tree_map(lambda w, g: ops.sub(w, ops.mul(0.1, g)), params, grads)
        return new, loss

    return train_step, params, (X, Y)


def assert_matches_reference(train_step, params, batch, mesh, schedule, atol=1e-5, **kw):
    ref_p, ref_l = train_step(params, batch)
    step = mesh.distributed(train_step, schedule=schedule, **kw)
    out_p, out_l = step(params, batch)
    for k in params:
        np.testing.assert_allclose(out_p[k], ref_p[k], atol=atol, rtol=1e-4)
    np.testing.assert_allclose(np.asarray(out_l), np.asarray(ref_l), atol=atol, rtol=1e-4)
    return step


class TestSchedulesMatchReference:
    @pytest.mark.parametrize(
        "schedule,n_stages",
        [
            (core.GPipe(2), 2),
            (core.GPipe(4), 4),
            (core.OneFOneB(2), 2),
            (core.OneFOneB(3), 3),
            (core.OneFOneB(4), 4),
            (core.Interleaved1F1B(2, 2), 4),
            (core.Interleaved1F1B(2, 3), 6),
            (core.Interleaved1F1B(4, 2), 8),
        ],
    )
    def test_schedule(self, schedule, n_stages):
        ts, params, batch = make_problem(n_stages)
        assert_matches_reference(ts, params, batch, core.RemoteMesh((schedule.n_actors,)), schedule)

    def test_more_microbatches(self):
        ts, params, batch = make_problem(3, n_mbs=12)
        assert_matches_reference(ts, params, batch, core.RemoteMesh((3,)), core.OneFOneB(3))

    def test_stage_count_mismatch_rejected(self):
        ts, params, batch = make_problem(3)
        step = core.RemoteMesh((4,)).distributed(ts, schedule=core.OneFOneB(4))
        with pytest.raises(ValueError, match="stages"):
            step(params, batch)


class TestDataParallel:
    def test_dp2_pp2(self):
        ts, params, batch = make_problem(2)
        step = assert_matches_reference(
            ts, params, batch, core.RemoteMesh((2, 2)), core.OneFOneB(2)
        )
        assert step.compiled.n_actors == 4

    def test_dp4_pp2(self):
        ts, params, batch = make_problem(2, mbsz=8)
        assert_matches_reference(ts, params, batch, core.RemoteMesh((4, 2)), core.OneFOneB(2))

    def test_dp_indivisible_batch_rejected(self):
        ts, params, batch = make_problem(2, mbsz=6)
        step = core.RemoteMesh((4, 2)).distributed(ts, schedule=core.OneFOneB(2))
        with pytest.raises(ValueError):
            step(params, batch)


class TestWeightSharing:
    def test_tied_exact_and_commuted(self):
        ts, params, batch = make_problem(3, tied=True)
        step = assert_matches_reference(ts, params, batch, core.RemoteMesh((3,)), core.OneFOneB(3))
        assert step.compiled.n_commuted == 1

    def test_commuting_reduces_p2p_traffic(self):
        import repro.core.compile as cc
        from repro.core.loop_commute import CommuteResult

        ts, params, batch = make_problem(3, tied=True, n_mbs=8)
        step = core.RemoteMesh((3,)).distributed(ts, schedule=core.OneFOneB(3))
        step(params, batch)
        commuted_p2p = step.last_result.p2p_count

        orig = cc.commute_shared_gradients
        cc.commute_shared_gradients = lambda body, out_ops, schedule, split=None: CommuteResult(
            body=split.body if split and split.body is not None else body,
            out_ops=tuple(out_ops), combines=[],
            out_map=[("direct", i) for i in range(len(out_ops))], n_commuted=0,
        )
        try:
            step2 = core.RemoteMesh((3,)).distributed(ts, schedule=core.OneFOneB(3))
            step2(params, batch)
        finally:
            cc.commute_shared_gradients = orig
        uncommuted_p2p = step2.last_result.p2p_count
        # n_mbs partial-gradient transfers collapse into one post-loop send
        assert commuted_p2p < uncommuted_p2p
        ref_p, _ = ts(params, batch)
        out_p, _ = step2(params, batch)
        for k in params:  # uncommuted is slower but still exact
            np.testing.assert_allclose(out_p[k], ref_p[k], atol=1e-5)


class TestMultiStep:
    def test_three_steps_track_reference(self):
        ts, params, batch = make_problem(3, seed=5)
        step = core.RemoteMesh((3,)).distributed(ts, schedule=core.OneFOneB(3))
        ref_p = params
        out_p = params
        for i in range(3):
            ref_p, ref_l = ts(ref_p, batch)
            out_p, out_l = step(out_p, batch)
            np.testing.assert_allclose(np.asarray(out_l), np.asarray(ref_l), atol=1e-5)
        for k in params:
            np.testing.assert_allclose(out_p[k], ref_p[k], atol=1e-4)

    def test_loss_decreases(self):
        ts, params, batch = make_problem(2, seed=6)
        step = core.RemoteMesh((2,)).distributed(ts, schedule=core.OneFOneB(2))
        p = params
        losses = []
        for _ in range(5):
            p, loss = step(p, batch)
            losses.append(float(np.mean(loss)))
        assert losses[-1] < losses[0]


class TestInnerSpmd:
    def test_pp_with_tensor_parallel_tasks(self):
        ts, params, batch = make_problem(2)
        mesh = core.RemoteMesh((2,), spmd_mesh=(("model", 2),), rules={"mlp": "model"})
        assert_matches_reference(ts, params, batch, mesh, core.OneFOneB(2), atol=1e-4)


class TestRandomizedEquivalence:
    @given(
        p=st.sampled_from([2, 3, 4]),
        m_mult=st.integers(1, 3),
        kind=st.sampled_from(["gpipe", "1f1b", "interleaved"]),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=12, deadline=None)
    def test_random_pipeline_configs(self, p, m_mult, kind, seed):
        if kind == "gpipe":
            sched, stages = core.GPipe(p), p
        elif kind == "1f1b":
            sched, stages = core.OneFOneB(p), p
        else:
            sched, stages = core.Interleaved1F1B(p, 2), 2 * p
        n_mbs = p * m_mult
        ts, params, batch = make_problem(stages, n_mbs=n_mbs, seed=seed)
        assert_matches_reference(ts, params, batch, core.RemoteMesh((p,)), sched)
