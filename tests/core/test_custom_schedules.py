"""The §6 extensibility claim, tested: user-defined Schedule subclasses run
through the unchanged compiler and runtime, exactly."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import core, ir
from repro.core.schedules import Unit, validate_schedule
from repro.ir import nn, ops, pipeline_yield
from tests.helpers import rng


class GPipeFIFO(core.GPipe):
    """GPipe draining backwards in FIFO microbatch order."""

    def units(self, n_mbs):
        out = []
        for actor in range(self.n_actors):
            seq = [Unit(i, actor, "fwd") for i in range(n_mbs)]
            seq += [Unit(i, actor, "bwd") for i in range(n_mbs)]
            out.append(seq)
        return out


class RandomizedValid(core.Schedule):
    """A deliberately scrambled (but dependency-valid) schedule: per actor,
    backwards are issued as soon as a seeded coin allows. Exists to prove
    the stack cares only about validity, not about recognisable shapes."""

    def __init__(self, n_stages: int, seed: int):
        self.n_stages = n_stages
        self.n_actors = n_stages
        self.seed = seed

    def actor_of_stage(self, stage):
        return stage

    def units(self, n_mbs):
        r = np.random.RandomState(self.seed)
        out = []
        for rank in range(self.n_actors):
            # start from 1F1B and randomly delay some backwards
            base = core.OneFOneB(self.n_stages).units(n_mbs)[rank]
            seq = list(base)
            for _ in range(4):
                i = r.randint(0, len(seq) - 1)
                if seq[i].kind == "bwd" and i + 1 < len(seq):
                    seq[i], seq[i + 1] = seq[i + 1], seq[i]
            # de-dup / keep dependency order within the actor: fwd of a mb
            # must precede its bwd locally
            pos = {}
            ok = True
            for k, u in enumerate(seq):
                pos[(u.mb, u.kind)] = k
            for mb in range(n_mbs):
                if pos[(mb, "fwd")] > pos[(mb, "bwd")]:
                    ok = False
            out.append(seq if ok else list(base))
        return out


def _problem(n_stages=3, n_mbs=6, mbsz=6, d=6, seed=0):
    r = rng(seed)
    X = r.randn(n_mbs, mbsz, d).astype(np.float32)
    Y = r.randn(n_mbs, mbsz, d).astype(np.float32)
    params = {f"w{i}": (r.randn(d, d) * 0.4).astype(np.float32) for i in range(n_stages)}

    def loss_fn(p, mb):
        x, y = mb
        h = x
        for i in range(n_stages):
            h = ops.matmul(h, p[f"w{i}"])
            if i < n_stages - 1:
                h = pipeline_yield(nn.relu(h))
        return ops.mean((h - y) ** 2.0)

    def train_step(params, batch):
        def mg(mb):
            loss, grads = ir.value_and_grad(loss_fn)(params, mb)
            return grads, loss

        grads, loss = core.accumulate_grads(mg, None)(batch)
        new = ir.tree_map(lambda w, g: ops.sub(w, ops.mul(0.1, g)), params, grads)
        return new, loss

    return train_step, params, (X, Y)


class TestCustomSchedules:
    def test_gpipe_fifo_validates_and_matches(self):
        sched = GPipeFIFO(3)
        validate_schedule(sched, 6)
        train_step, params, batch = _problem()
        ref_p, _ = train_step(params, batch)
        step = core.RemoteMesh((3,)).distributed(train_step, schedule=sched)
        out_p, _ = step(params, batch)
        for k in params:
            np.testing.assert_allclose(out_p[k], ref_p[k], atol=1e-5)

    @given(seed=st.integers(0, 200))
    @settings(max_examples=10, deadline=None)
    def test_randomized_valid_schedules_all_exact(self, seed):
        sched = RandomizedValid(3, seed)
        try:
            validate_schedule(sched, 6)
        except ValueError:
            return  # scramble produced a cross-actor deadlock: skip
        train_step, params, batch = _problem(seed=seed % 7)
        ref_p, _ = train_step(params, batch)
        step = core.RemoteMesh((3,)).distributed(train_step, schedule=sched)
        out_p, _ = step(params, batch)
        for k in params:
            np.testing.assert_allclose(out_p[k], ref_p[k], atol=1e-5)
