"""Schedule tests: validity, memory/bubble characteristics (§2.2.1), and
hypothesis properties over random configurations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.schedules import (
    BWD_I,
    BWD_W,
    Eager1F1B,
    GPipe,
    Hybrid1F1B,
    Interleaved1F1B,
    InterleavedZB,
    LoopedBFS,
    OneFOneB,
    Unit,
    ZBH1,
    ZBH2,
    ZBV,
    schedule_stats,
    validate_schedule,
)


class TestGPipe:
    def test_valid(self):
        validate_schedule(GPipe(4), 8)

    def test_all_forwards_before_backwards(self):
        for seq in GPipe(3).units(5):
            kinds = [u.kind for u in seq]
            assert kinds == ["fwd"] * 5 + ["bwd"] * 5

    def test_backward_reverse_order(self):
        seq = GPipe(2).units(4)[0]
        bwd_mbs = [u.mb for u in seq if u.kind == "bwd"]
        assert bwd_mbs == [3, 2, 1, 0]

    def test_peak_memory_scales_with_microbatches(self):
        stats = schedule_stats(GPipe(4), 16)
        assert stats["peak_live_activations"][0] == 16

    def test_one_stage_per_actor(self):
        with pytest.raises(ValueError):
            GPipe(4, n_actors=2)


class TestOneFOneB:
    def test_valid(self):
        validate_schedule(OneFOneB(4), 8)

    def test_warmup_counts(self):
        per_actor = OneFOneB(4).units(8)
        for rank, seq in enumerate(per_actor):
            warmup = 0
            for u in seq:
                if u.kind != "fwd":
                    break
                warmup += 1
            assert warmup == 4 - rank - 1 + 1  # warmup fwds + first steady fwd

    def test_peak_memory_scales_with_stages(self):
        # §2.2.1: memory ∝ #stages, independent of #microbatches
        s8 = schedule_stats(OneFOneB(4), 8)
        s32 = schedule_stats(OneFOneB(4), 32)
        assert s8["peak_live_activations"] == s32["peak_live_activations"]
        assert s8["peak_live_activations"][0] == 4

    def test_memory_reduction_vs_gpipe(self):
        # the 2-3x activation memory reduction claim
        g = schedule_stats(GPipe(4), 12)["peak_live_activations"][0]
        o = schedule_stats(OneFOneB(4), 12)["peak_live_activations"][0]
        assert g / o == 3.0

    def test_same_bubble_as_gpipe(self):
        # 1F1B improves memory, not the bubble: (p-1)/(m+p-1) for both
        g = schedule_stats(GPipe(4), 8)["bubble_fraction"]
        o = schedule_stats(OneFOneB(4), 8)["bubble_fraction"]
        assert g == pytest.approx(o, rel=1e-9)

    def test_fewer_microbatches_than_stages(self):
        validate_schedule(OneFOneB(4), 2)


class TestInterleaved:
    def test_valid(self):
        validate_schedule(Interleaved1F1B(4, 2), 8)
        validate_schedule(Interleaved1F1B(2, 3), 4)

    def test_stage_to_actor_round_robin(self):
        s = Interleaved1F1B(4, 2)
        assert [s.actor_of_stage(i) for i in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_stages_of_actor(self):
        s = Interleaved1F1B(2, 3)
        assert s.stages_of_actor(0) == [0, 2, 4]
        assert s.stages_of_actor(1) == [1, 3, 5]

    def test_requires_divisible_microbatches(self):
        with pytest.raises(ValueError):
            Interleaved1F1B(4, 2).units(6)

    def test_smaller_bubble_than_1f1b(self):
        # interleaving's raison d'être (§2.2.1 / Fig 6): with v chunks the
        # per-unit cost is 1/v, so compare bubble fractions at equal work.
        plain = schedule_stats(OneFOneB(4), 8, fwd_time=1.0, bwd_time=2.0)
        inter = schedule_stats(Interleaved1F1B(4, 2), 8, fwd_time=0.5, bwd_time=1.0)
        assert inter["bubble_fraction"] < plain["bubble_fraction"]

    def test_v1_equals_plain_1f1b_bubble(self):
        a = schedule_stats(Interleaved1F1B(4, 1), 8)
        b = schedule_stats(OneFOneB(4), 8)
        assert a["makespan"] == b["makespan"]

    def test_circular_repeat_must_be_positive(self):
        with pytest.raises(ValueError):
            Interleaved1F1B(4, 0)


class TestEager1F1B:
    @pytest.mark.parametrize("p,m", [(2, 2), (2, 6), (4, 4), (4, 8), (4, 13), (6, 12), (8, 32)])
    def test_valid_on_grid(self, p, m):
        validate_schedule(Eager1F1B(p), m)

    def test_doubled_warmup(self):
        for rank, seq in enumerate(Eager1F1B(4).units(16)):
            warmup = 0
            for u in seq:
                if u.kind != "fwd":
                    break
                warmup += 1
            # warmup forwards + the first steady-state forward
            assert warmup == min(2 * (4 - 1 - rank), 16) + 1

    def test_last_rank_matches_plain_1f1b(self):
        assert Eager1F1B(4).units(8)[3] == OneFOneB(4).units(8)[3]

    def test_memory_roughly_doubles_but_stays_stage_bounded(self):
        eager = schedule_stats(Eager1F1B(4), 32)["peak_live_activations"]
        plain = schedule_stats(OneFOneB(4), 32)["peak_live_activations"]
        assert eager[0] == 2 * plain[0] - 1  # 2(p-1)+1 vs p
        # still independent of the microbatch count
        assert eager == schedule_stats(Eager1F1B(4), 8)["peak_live_activations"]

    def test_same_makespan_as_1f1b_under_uniform_costs(self):
        e = schedule_stats(Eager1F1B(4), 8)
        o = schedule_stats(OneFOneB(4), 8)
        assert e["makespan"] == pytest.approx(o["makespan"])

    def test_one_stage_per_actor(self):
        with pytest.raises(ValueError):
            Eager1F1B(4, n_actors=2)

    def test_misordered_variant_rejected(self):
        class Bad(Eager1F1B):
            def units(self, n_mbs):
                out = super().units(n_mbs)
                out[0] = list(reversed(out[0]))
                return out

        with pytest.raises(ValueError):
            validate_schedule(Bad(3), 6)


class TestZBH1:
    @pytest.mark.parametrize("p,m", [(2, 2), (2, 5), (3, 6), (4, 4), (4, 8), (4, 11), (8, 32)])
    def test_valid_on_grid(self, p, m):
        validate_schedule(ZBH1(p), m)

    def test_backward_is_split(self):
        kinds = {u.kind for seq in ZBH1(4).units(8) for u in seq}
        assert kinds == {"fwd", BWD_I, BWD_W}

    def test_weight_grad_follows_input_grad_locally(self):
        for seq in ZBH1(4).units(12):
            pos = {(u.mb, u.kind): i for i, u in enumerate(seq)}
            for mb in range(12):
                assert pos[(mb, BWD_I)] < pos[(mb, BWD_W)]

    def test_same_peak_memory_as_1f1b(self):
        z = schedule_stats(ZBH1(4), 16)["peak_live_activations"]
        o = schedule_stats(OneFOneB(4), 16)["peak_live_activations"]
        assert z == o

    def test_smaller_bubble_than_1f1b(self):
        # the zero-bubble claim: W units fill the cooldown bubble and the
        # backward sweep's critical path shrinks to the bwd_i chain
        z = schedule_stats(ZBH1(4), 8, fwd_time=1.0, bwd_time=2.0)
        o = schedule_stats(OneFOneB(4), 8, fwd_time=1.0, bwd_time=2.0)
        assert z["makespan"] < o["makespan"]
        assert z["bubble_fraction"] < o["bubble_fraction"]

    def test_work_conserved(self):
        # splitting must not change total busy time per actor
        z = schedule_stats(ZBH1(4), 8, fwd_time=1.0, bwd_time=2.0)
        o = schedule_stats(OneFOneB(4), 8, fwd_time=1.0, bwd_time=2.0)
        assert z["busy"] == pytest.approx(o["busy"])

    def test_w_before_its_i_rejected(self):
        class Bad(ZBH1):
            def units(self, n_mbs):
                out = super().units(n_mbs)
                for seq in out:
                    for i, u in enumerate(seq):
                        if u.kind == BWD_W:
                            # hoist the first W to the front of the program
                            seq.insert(0, seq.pop(i))
                            break
                return out

        with pytest.raises(ValueError, match="deadlock"):
            validate_schedule(Bad(3), 6)

    def test_monolithic_bwd_in_split_schedule_rejected(self):
        class Bad(ZBH1):
            def units(self, n_mbs):
                out = super().units(n_mbs)
                u = out[0][-1]
                out[0][-1] = Unit(u.mb, u.stage, "bwd")
                return out

        with pytest.raises(ValueError, match="may only emit"):
            validate_schedule(Bad(3), 6)

    def test_split_kind_in_monolithic_schedule_rejected(self):
        class Bad(OneFOneB):
            def units(self, n_mbs):
                out = super().units(n_mbs)
                u = out[0][-1]
                out[0][-1] = Unit(u.mb, u.stage, BWD_I)
                return out

        with pytest.raises(ValueError, match="may only emit"):
            validate_schedule(Bad(2), 2)

    def test_one_stage_per_actor(self):
        with pytest.raises(ValueError):
            ZBH1(4, n_actors=2)


class TestZBH2:
    @pytest.mark.parametrize("p,m", [(2, 2), (2, 5), (3, 6), (4, 4), (4, 8), (4, 11), (8, 32)])
    def test_valid_on_grid(self, p, m):
        validate_schedule(ZBH2(p), m)

    def test_smaller_bubble_than_zbh1(self):
        # the relaxed memory bound buys a smaller warmup bubble and a
        # faster bwd_i critical chain (weight-gradients deferred on every
        # rank, including the last)
        z2 = schedule_stats(ZBH2(4), 8, fwd_time=1.0, bwd_time=2.0)
        z1 = schedule_stats(ZBH1(4), 8, fwd_time=1.0, bwd_time=2.0)
        assert z2["makespan"] < z1["makespan"]
        assert z2["bubble_fraction"] < z1["bubble_fraction"]

    def test_memory_roughly_doubles_but_stays_stage_bounded(self):
        z2 = schedule_stats(ZBH2(4), 32)["peak_live_activations"]
        z1 = schedule_stats(ZBH1(4), 32)["peak_live_activations"]
        assert max(z2) == 2 * max(z1) - 1  # 2p - 1 vs p
        # still independent of the microbatch count
        assert z2 == schedule_stats(ZBH2(4), 16)["peak_live_activations"]

    def test_work_conserved(self):
        z2 = schedule_stats(ZBH2(4), 8, fwd_time=1.0, bwd_time=2.0)
        o = schedule_stats(OneFOneB(4), 8, fwd_time=1.0, bwd_time=2.0)
        assert z2["busy"] == pytest.approx(o["busy"])

    def test_one_stage_per_actor(self):
        with pytest.raises(ValueError):
            ZBH2(4, n_actors=2)


class TestLoopedBFS:
    @pytest.mark.parametrize("p,v,m", [(2, 2, 4), (2, 3, 5), (4, 2, 8), (4, 3, 4), (3, 2, 7)])
    def test_valid_on_grid(self, p, v, m):
        validate_schedule(LoopedBFS(p, v), m)

    def test_breadth_first_sweeps(self):
        # per actor: all microbatches through chunk 0, then chunk 1, ...;
        # backward chunks reversed, microbatches drained LIFO
        for rank, seq in enumerate(LoopedBFS(2, 2).units(3)):
            stages = [u.stage for u in seq]
            assert stages == [rank] * 3 + [2 + rank] * 3 + [2 + rank] * 3 + [rank] * 3
            fwd_mbs = [u.mb for u in seq if u.kind == "fwd"]
            bwd_mbs = [u.mb for u in seq if u.kind == "bwd"]
            assert fwd_mbs == [0, 1, 2, 0, 1, 2]
            assert bwd_mbs == [2, 1, 0, 2, 1, 0]

    def test_round_robin_placement(self):
        s = LoopedBFS(4, 2)
        assert [s.actor_of_stage(i) for i in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_memory_grows_with_microbatches(self):
        # the BFS trade-off: GPipe-like memory, scaled by circular repeat
        small = schedule_stats(LoopedBFS(2, 2), 4)["peak_live_activations"]
        large = schedule_stats(LoopedBFS(2, 2), 8)["peak_live_activations"]
        assert large[0] == 2 * small[0] == 16

    def test_no_divisibility_constraint(self):
        # unlike Interleaved1F1B, BFS sweeps need no n_mbs % p == 0
        validate_schedule(LoopedBFS(4, 2), 5)

    def test_circular_repeat_must_be_positive(self):
        with pytest.raises(ValueError):
            LoopedBFS(4, 0)


class TestInterleavedZB:
    @pytest.mark.parametrize("p,v,m", [(2, 2, 4), (2, 3, 6), (4, 2, 8), (4, 3, 12)])
    def test_valid_on_grid(self, p, v, m):
        validate_schedule(InterleavedZB(p, v), m)

    def test_backward_is_split(self):
        kinds = {u.kind for seq in InterleavedZB(2, 2).units(4) for u in seq}
        assert kinds == {"fwd", BWD_I, BWD_W}

    def test_same_peak_memory_as_interleaved(self):
        iz = schedule_stats(InterleavedZB(4, 2), 8)["peak_live_activations"]
        ib = schedule_stats(Interleaved1F1B(4, 2), 8)["peak_live_activations"]
        assert iz == ib

    def test_smaller_makespan_than_interleaved(self):
        # zero-bubble inside the circular-repeat family: same memory,
        # smaller bubble, because downstream chunks wait only on bwd_i
        iz = schedule_stats(InterleavedZB(4, 2), 8, fwd_time=1.0, bwd_time=2.0)
        ib = schedule_stats(Interleaved1F1B(4, 2), 8, fwd_time=1.0, bwd_time=2.0)
        assert iz["makespan"] < ib["makespan"]

    def test_work_conserved(self):
        iz = schedule_stats(InterleavedZB(4, 2), 8, fwd_time=1.0, bwd_time=2.0)
        ib = schedule_stats(Interleaved1F1B(4, 2), 8, fwd_time=1.0, bwd_time=2.0)
        assert iz["busy"] == pytest.approx(ib["busy"])

    def test_requires_divisible_microbatches(self):
        with pytest.raises(ValueError):
            InterleavedZB(4, 2).units(6)

    def test_weight_grad_follows_input_grad_locally(self):
        for seq in InterleavedZB(2, 2).units(6):
            pos = {(u.mb, u.stage, u.kind): i for i, u in enumerate(seq)}
            for (mb, stage, kind), i in pos.items():
                if kind == BWD_W:
                    assert pos[(mb, stage, BWD_I)] < i


class TestZBV:
    @pytest.mark.parametrize("p,m", [(1, 2), (2, 2), (2, 5), (3, 6), (4, 8), (4, 11), (8, 16)])
    def test_valid_on_grid(self, p, m):
        validate_schedule(ZBV(p), m)

    def test_v_shape_placement(self):
        # descending chunk on actor s, ascending chunk folded back up:
        # actor 0 owns the first and last stage, actor p-1 the middle two
        s = ZBV(4)
        assert [s.actor_of_stage(i) for i in range(8)] == [0, 1, 2, 3, 3, 2, 1, 0]
        assert s.stages_of_actor(0) == [0, 7]
        assert s.stages_of_actor(3) == [3, 4]

    def test_two_chunks_per_actor(self):
        s = ZBV(3)
        assert s.n_stages == 6
        for rank in range(3):
            assert len(s.stages_of_actor(rank)) == 2

    def test_backward_is_split(self):
        kinds = {u.kind for seq in ZBV(2).units(4) for u in seq}
        assert kinds == {"fwd", BWD_I, BWD_W}

    def test_memory_balanced_at_1f1b_bytes(self):
        # ZB-V's claim: ~2p live *chunk* activations per rank (each chunk
        # is half the layers), i.e. 1F1B's byte budget, uniformly
        p, m = 4, 16
        peaks = schedule_stats(ZBV(p), m)["peak_live_activations"]
        assert max(peaks) <= 2 * p
        # and independent of the microbatch count
        assert peaks == schedule_stats(ZBV(p), 8)["peak_live_activations"]

    def test_smaller_makespan_than_zbh2_and_interleaved_zb(self):
        # the ZB-V selling point at its design point (fwd = bwd_i = bwd_w):
        # beats ZB-H2's makespan at roughly half its activation memory
        # (compare at equal per-rank work: ZBV chunks are half stages)
        p, m = 4, 8
        zv = schedule_stats(ZBV(p), m, fwd_time=0.5, bwd_time=1.0)
        z2 = schedule_stats(ZBH2(p), m, fwd_time=1.0, bwd_time=2.0)
        iz = schedule_stats(InterleavedZB(p, 2), m, fwd_time=0.5, bwd_time=1.0)
        assert zv["makespan"] < z2["makespan"]
        assert zv["makespan"] < iz["makespan"]

    def test_work_conserved(self):
        zv = schedule_stats(ZBV(4), 8, fwd_time=0.5, bwd_time=1.0)
        o = schedule_stats(OneFOneB(4), 8, fwd_time=1.0, bwd_time=2.0)
        assert zv["busy"] == pytest.approx(o["busy"])

    def test_weight_grad_follows_input_grad_locally(self):
        for seq in ZBV(3).units(6):
            pos = {(u.mb, u.stage, u.kind): i for i, u in enumerate(seq)}
            for (mb, stage, kind), i in pos.items():
                if kind == BWD_W:
                    assert pos[(mb, stage, BWD_I)] < i

    def test_units_deterministic_and_cached(self):
        s = ZBV(3)
        a = s.units(6)
        b = s.units(6)
        assert a == b
        assert a is not b  # callers get copies, not the cache
        assert a == ZBV(3).units(6)  # fresh instance, same order

    def test_needs_at_least_one_actor(self):
        with pytest.raises(ValueError):
            ZBV(0)


class TestHybrid1F1B:
    def test_1f1b_warmup_reproduces_onefoneb(self):
        p, m = 4, 8
        hybrid = Hybrid1F1B(p, [p - 1 - r for r in range(p)])
        assert hybrid.units(m) == OneFOneB(p).units(m)

    def test_eager_warmup_reproduces_eager(self):
        p, m = 4, 16
        hybrid = Hybrid1F1B(p, [2 * (p - 1 - r) for r in range(p)])
        assert hybrid.units(m) == Eager1F1B(p).units(m)

    @pytest.mark.parametrize("warmup", [(5, 3, 2, 0), (8, 8, 8, 8), (1, 1, 1, 0), (0, 0, 0, 0)])
    def test_non_increasing_vectors_valid(self, warmup):
        validate_schedule(Hybrid1F1B(4, warmup), 8)

    def test_increasing_vector_deadlocks(self):
        # a downstream rank warming up more than its upstream deadlocks
        with pytest.raises(ValueError, match="deadlock"):
            validate_schedule(Hybrid1F1B(4, (0, 0, 0, 1)), 8)

    def test_activation_bound_tracks_warmup(self):
        s = Hybrid1F1B(4, (5, 3, 2, 0))
        peaks = schedule_stats(s, 8)["peak_live_activations"]
        for rank, peak in enumerate(peaks):
            assert peak <= s.activation_bound(rank, 8)

    def test_rejects_wrong_length_or_negative(self):
        with pytest.raises(ValueError):
            Hybrid1F1B(4, (1, 0))
        with pytest.raises(ValueError):
            Hybrid1F1B(2, (-1, 0))


class TestValidation:
    def test_detects_duplicate(self):
        class Bad(OneFOneB):
            def units(self, n_mbs):
                out = super().units(n_mbs)
                out[0].append(out[0][0])
                return out

        with pytest.raises(ValueError, match="twice"):
            validate_schedule(Bad(2), 2)

    def test_detects_missing(self):
        class Bad(OneFOneB):
            def units(self, n_mbs):
                out = super().units(n_mbs)
                out[0] = out[0][:-1]
                return out

        with pytest.raises(ValueError, match="incomplete"):
            validate_schedule(Bad(2), 2)

    def test_detects_wrong_actor(self):
        class Bad(OneFOneB):
            def units(self, n_mbs):
                out = super().units(n_mbs)
                out[0], out[1] = out[1], out[0]
                return out

        with pytest.raises(ValueError, match="belongs to"):
            validate_schedule(Bad(2), 2)

    def test_detects_deadlock(self):
        class Bad(OneFOneB):
            def units(self, n_mbs):
                out = super().units(n_mbs)
                out[0] = list(reversed(out[0]))
                return out

        with pytest.raises(ValueError):
            validate_schedule(Bad(2), 2)


class TestScheduleProperties:
    @given(
        p=st.integers(2, 6),
        m_mult=st.integers(1, 4),
        v=st.integers(1, 3),
        kind=st.sampled_from(
            ["gpipe", "1f1b", "interleaved", "eager1f1b", "zbh1",
             "zbh2", "zbv", "looped_bfs", "interleaved_zb"]
        ),
    )
    @settings(max_examples=80, deadline=None)
    def test_random_configs_valid(self, p, m_mult, v, kind):
        m = p * m_mult
        if kind == "gpipe":
            sched = GPipe(p)
        elif kind == "zbv":
            sched = ZBV(p)
        elif kind == "1f1b":
            sched = OneFOneB(p)
        elif kind == "eager1f1b":
            sched = Eager1F1B(p)
        elif kind == "zbh1":
            sched = ZBH1(p)
        elif kind == "zbh2":
            sched = ZBH2(p)
        elif kind == "looped_bfs":
            sched = LoopedBFS(p, v)
        elif kind == "interleaved_zb":
            sched = InterleavedZB(p, v)
        else:
            sched = Interleaved1F1B(p, v)
        validate_schedule(sched, m)

    @given(p=st.integers(2, 5), m_mult=st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_1f1b_memory_bounded_by_stages(self, p, m_mult):
        stats = schedule_stats(OneFOneB(p), p * m_mult)
        for rank, peak in enumerate(stats["peak_live_activations"]):
            assert peak <= p - rank

    @given(p=st.integers(2, 4), m_mult=st.integers(2, 5))
    @settings(max_examples=20, deadline=None)
    def test_bubble_decreases_with_microbatches(self, p, m_mult):
        few = schedule_stats(OneFOneB(p), p)["bubble_fraction"]
        many = schedule_stats(OneFOneB(p), p * m_mult)["bubble_fraction"]
        assert many < few
