"""Tests for stage splitting (§3.2-3.3): the Figure 3 task structure."""

import numpy as np
import pytest

from repro import ir
from repro.ir import nn, ops, pipeline_yield
from repro.core.stage_split import FUSED_KIND, split_stages
from tests.helpers import rng


def _mlp_body(n_stages=3, d=4, mbsz=5, seed=0, tied=False):
    """Trace the fwd+bwd microbatch-gradient body of an n-stage MLP."""
    r = rng(seed)
    params = {f"w{i}": (r.randn(d, d) * 0.4).astype(np.float32) for i in range(n_stages)}
    X = r.randn(mbsz, d).astype(np.float32)
    Y = r.randn(mbsz, d).astype(np.float32)

    def loss_fn(p, x, y):
        h = x
        for i in range(n_stages):
            w = p["w0"] if (tied and i == n_stages - 1) else p[f"w{i}"]
            h = nn.relu(ops.matmul(h, w)) if i < n_stages - 1 else ops.matmul(h, w)
            if i < n_stages - 1:
                h = pipeline_yield(h)
        return ops.mean((h - y) ** 2.0)

    def body(p, x, y):
        loss, grads = ir.value_and_grad(loss_fn)(p, x, y)
        return grads, loss

    jaxpr, _, _ = ir.trace(body, params, X, Y)
    return jaxpr, params, X, Y


class TestFigure3Structure:
    def test_task_count_and_kinds(self):
        body, *_ = _mlp_body(3)
        split = split_stages(body)
        assert split.n_stages == 3
        kinds = [(t.kind, t.stage) for t in split.tasks]
        # F0, F1, FLB2, B1, B0 — Figure 3's f1 f2 f3b3 b2 b1
        assert kinds == [
            ("fwd", 0), ("fwd", 1), ("fwd_loss_bwd", 2), ("bwd", 1), ("bwd", 0),
        ]

    def test_last_stage_fused(self):
        body, *_ = _mlp_body(4)
        split = split_stages(body)
        assert split.fwd_task_of_stage[3] == split.bwd_task_of_stage[3]
        assert split.tasks[split.fwd_task_of_stage[3]].kind == FUSED_KIND

    def test_two_stage(self):
        body, *_ = _mlp_body(2)
        split = split_stages(body)
        assert [(t.kind, t.stage) for t in split.tasks] == [
            ("fwd", 0), ("fwd_loss_bwd", 1), ("bwd", 0),
        ]

    def test_no_yields_rejected(self):
        def f(x):
            return [ops.mean(x)]

        from repro.ir.tracer import trace_flat

        jaxpr, _ = trace_flat(f, [ir.ShapedArray((3,), ir.float32)])
        with pytest.raises(ValueError):
            split_stages(jaxpr)

    def test_weight_grads_colocated_with_stage(self):
        # dW_k must live in stage k's backward task, not all in B0 (the
        # "same task of their operands" rule of §3.3).
        body, params, X, Y = _mlp_body(3)
        split = split_stages(body)
        # Find which task produces each gradient output (first 3 outputs
        # are grads for w0, w1, w2 in sorted key order).
        producer = {}
        for t in split.tasks:
            for v in t.out_vars:
                producer[id(v)] = t
        g_tasks = [producer[id(a)] for a in split.body.outvars[:3]]
        assert g_tasks[0].stage == 0 and g_tasks[0].kind == "bwd"
        assert g_tasks[1].stage == 1 and g_tasks[1].kind == "bwd"
        assert g_tasks[2].stage == 2 and g_tasks[2].kind == FUSED_KIND


class TestTaskClosure:
    def test_tasks_partition_all_eqns(self):
        body, *_ = _mlp_body(3)
        split = split_stages(body)
        total = sum(t.jaxpr.n_eqns for t in split.tasks)
        assert total == split.body.n_eqns

    def test_task_jaxprs_valid(self):
        body, *_ = _mlp_body(4)
        split = split_stages(body)
        for t in split.tasks:
            ir.validate(t.jaxpr)

    def test_producer_task_precedes_consumer(self):
        body, *_ = _mlp_body(4)
        split = split_stages(body)
        producer = {}
        for t in split.tasks:
            for v in t.out_vars:
                producer[id(v)] = t.index
        for t in split.tasks:
            for a in t.in_atoms:
                if id(a) in producer:
                    assert producer[id(a)] <= t.index

    def test_semantics_preserved(self):
        # Executing tasks in order == executing the body directly.
        body, params, X, Y = _mlp_body(3, seed=7)
        split = split_stages(body)
        flat_args = [params[k] for k in sorted(params)] + [X, Y]
        want = ir.eval_jaxpr(body, flat_args)

        env = {id(v): val for v, val in zip(split.body.invars, flat_args)}
        for t in split.tasks:
            ins = [env[id(a)] if not hasattr(a, "value") else a.value for a in t.in_atoms]
            outs = ir.eval_jaxpr(t.jaxpr, ins)
            for v, val in zip(t.out_vars, outs):
                env[id(v)] = val
        got = [env[id(a)] if not hasattr(a, "value") else a.value for a in split.body.outvars]
        for g, w in zip(got, want):
            np.testing.assert_allclose(g, w, rtol=1e-6)

    def test_interleaved_stage_count(self):
        body, *_ = _mlp_body(6)
        split = split_stages(body)
        assert split.n_stages == 6
        assert len(split.tasks) == 2 * 6 - 1

    def test_yield_markers_stay_internal(self):
        body, *_ = _mlp_body(3)
        split = split_stages(body)
        # each forward yield is claimed by its own stage's task
        for t in split.tasks:
            for eqn in t.jaxpr.eqns:
                if eqn.prim.name == "pipeline_yield":
                    d, i = eqn.params["direction"], eqn.params["index"]
                    if d == "fwd":
                        assert t.stage == i
