"""Pickle round-trips for compiled artefacts — the spawn-context contract.

The multi-process MPMD backend (``engine="mp"``, :mod:`repro.runtime.mp`)
ships each actor's fused instruction program to a spawn-context worker
with plain :mod:`pickle`.  That makes picklability of everything a program
can reference part of the compiler's contract:

- ``Primitive`` reduces to a registry lookup by name (its impl/vjp rules
  are frequently lambdas and must never be serialized; identity is
  preserved, so unpickled equations still satisfy ``eqn.prim is
  registry[name]``);
- ``LinearProgram`` reduces to ``linearize(jaxpr)`` — the lowered form
  (``functools.partial`` impls, ``FusedChain`` ufunc steps) is rebuilt
  deterministically from the shipped jaxpr;
- every RunTask payload the compiler emits (slice / dp-mean / stack /
  combine / pre-post equation / interpret fallback) is a module-level
  function or a small picklable callable class — never a closure.
"""

import pickle

import numpy as np
import pytest

from repro import core, ir
from repro.core.compile import compile_train_step
from repro.ir.codegen import CodegenProgram, codegen
from repro.ir.jaxpr import validate
from repro.ir.linearize import FusedChain, LinearProgram, linearize
from repro.ir.primitives import registry
from repro.runtime.executor import MpmdExecutor
from repro.runtime.instructions import BufferRef, RunTask
from tests.core.test_linear_backend import assert_bit_identical, make_problem

PROTOCOLS = (pickle.DEFAULT_PROTOCOL, pickle.HIGHEST_PROTOCOL)


def _task_args(task, seed=0):
    r = np.random.RandomState(seed)
    return [
        r.randn(*v.aval.shape).astype(v.aval.dtype.np_dtype)
        if v.aval.shape
        else np.float32(r.randn())
        for v in task.jaxpr.invars
    ]


def _compiled(n_stages=3, n_mbs=4, schedule=None, **kw):
    ts, params, batch = make_problem(n_stages, n_mbs=n_mbs)
    jaxpr, _, _ = ir.trace(ts, params, batch)
    compiled = compile_train_step(jaxpr, schedule or core.OneFOneB(n_stages), **kw)
    flat, _ = ir.tree_flatten((params, batch))
    return compiled, flat


def _run(compiled, flat, programs=None):
    """Drive one execution of ``programs`` (default: the compiled step's
    own) through a fresh executor, mirroring the StepFunction driver."""
    ex = MpmdExecutor(compiled.n_actors)
    for k, placements in enumerate(compiled.input_placements):
        for actor, uid in placements:
            ex.place(actor, BufferRef(uid), np.asarray(flat[k]), 0, pinned=True)
    for actor, uid, lit in compiled.literal_placements:
        ex.place(actor, BufferRef(uid), np.asarray(lit.value), 0, pinned=True)
    ex.execute(programs if programs is not None else compiled.programs)
    outs = []
    for src in compiled.output_sources:
        if src[0] == "literal":
            outs.append(src[1])
        elif src[0] == "input":
            outs.append(flat[src[1]])
        else:
            outs.append(ex.fetch(src[1], BufferRef(src[2])))
    return outs


class TestPrimitivePickle:
    @pytest.mark.parametrize("proto", PROTOCOLS)
    def test_identity_preserved(self, proto):
        p = registry["matmul"]
        q = pickle.loads(pickle.dumps(p, proto))
        assert q is p

    def test_unknown_primitive_rejected(self):
        from repro.ir.primitives import _lookup

        with pytest.raises(ValueError, match="not registered"):
            _lookup("definitely-not-a-primitive")


class TestJaxprPickle:
    @pytest.mark.parametrize("proto", PROTOCOLS)
    def test_stage_jaxpr_round_trip(self, proto):
        compiled, _ = _compiled()
        for task in compiled.split.tasks:
            j2 = pickle.loads(pickle.dumps(task.jaxpr, proto))
            validate(j2)
            assert all(e.prim is registry[e.prim.name] for e in j2.eqns)
            args = _task_args(task)
            want = ir.eval_jaxpr(task.jaxpr, list(args))
            got = ir.eval_jaxpr(j2, list(args))
            assert_bit_identical(want, got)

    def test_internal_var_sharing_preserved(self):
        compiled, _ = _compiled()
        j = compiled.split.tasks[0].jaxpr
        j2 = pickle.loads(pickle.dumps(j))
        # single-assignment aliasing must survive: an eqn operand that was
        # the previous eqn's output is still the *same* Var object
        ids = {id(v) for v in j2.invars}
        for eqn in j2.eqns:
            for a in eqn.invars:
                if not isinstance(a, ir.jaxpr.Literal):
                    assert id(a) in ids
            ids.update(id(v) for v in eqn.outvars)


class TestLinearProgramPickle:
    @pytest.mark.parametrize("proto", PROTOCOLS)
    def test_round_trip_bit_identical(self, proto):
        compiled, _ = _compiled()
        for task in compiled.split.tasks:
            lp = linearize(task.jaxpr)
            lp2 = pickle.loads(pickle.dumps(lp, proto))
            assert isinstance(lp2, LinearProgram)
            assert lp2.stats == lp.stats
            args = _task_args(task, seed=3)
            assert_bit_identical(lp(args), lp2(args))

    def test_fused_chain_rebuilt(self):
        """A program whose lowering produced FusedChain dispatches (raw
        ufunc steps — the unpicklable offender) still round-trips, because
        the reduce path rebuilds from the jaxpr."""
        compiled, _ = _compiled()
        fused = [
            linearize(t.jaxpr)
            for t in compiled.split.tasks
            if linearize(t.jaxpr).stats["fused_groups"] > 0
        ]
        assert fused, "expected at least one stage task with a fused chain"
        for lp in fused:
            lp2 = pickle.loads(pickle.dumps(lp))
            assert any(
                isinstance(instr[0], FusedChain) for instr in lp2._instrs
            )

    def test_sharing_collapses_via_memo_and_cache(self):
        compiled, _ = _compiled()
        loop_tasks = [
            instr
            for prog in compiled.programs
            for instr in prog
            if isinstance(instr, RunTask)
            and instr.meta.get("phase") == "loop"
            and isinstance(instr.fn, LinearProgram)
        ]
        n_distinct = len({id(t.fn) for t in loop_tasks})
        rebuilt = pickle.loads(pickle.dumps(loop_tasks))
        assert len({id(t.fn) for t in rebuilt}) == n_distinct


class TestCodegenProgramPickle:
    """``CodegenProgram.__reduce__`` ships only the jaxpr; the worker side
    re-lowers and re-generates source — the exact contract that lets
    ``engine="mp"`` and the persistent pool run codegen unchanged."""

    @pytest.mark.parametrize("proto", PROTOCOLS)
    def test_round_trip_bit_identical(self, proto):
        compiled, _ = _compiled()
        for task in compiled.split.tasks:
            cp = codegen(task.jaxpr)
            cp2 = pickle.loads(pickle.dumps(cp, proto))
            assert isinstance(cp2, CodegenProgram)
            args = _task_args(task, seed=3)
            assert_bit_identical(cp(args), cp2(args))

    def test_source_regenerated_not_shipped(self):
        compiled, _ = _compiled()
        cp = codegen(compiled.split.tasks[0].jaxpr)
        blob = pickle.dumps(cp)
        # the generated text never travels — only the jaxpr does
        assert cp.source.encode()[:40] not in blob
        assert pickle.loads(blob).source == cp.source

    def test_sharing_collapses_via_memo_and_cache(self):
        compiled, _ = _compiled(task_backend="codegen")
        loop_tasks = [
            instr
            for prog in compiled.programs
            for instr in prog
            if isinstance(instr, RunTask)
            and instr.meta.get("phase") == "loop"
            and isinstance(instr.fn, CodegenProgram)
        ]
        assert loop_tasks
        n_distinct = len({id(t.fn) for t in loop_tasks})
        rebuilt = pickle.loads(pickle.dumps(loop_tasks))
        assert len({id(t.fn) for t in rebuilt}) == n_distinct


class TestCompiledProgramsPickle:
    @pytest.mark.parametrize("task_backend", ["linear", "interpret", "codegen"])
    def test_programs_round_trip_and_execute(self, task_backend):
        compiled, flat = _compiled(task_backend=task_backend)
        want = _run(compiled, flat)
        progs2 = pickle.loads(pickle.dumps(compiled.programs))
        got = _run(compiled, flat, programs=progs2)
        assert_bit_identical(want, got)

    def test_data_parallel_programs_round_trip(self):
        ts, params, batch = make_problem(2, n_mbs=4, mbsz=8)
        jaxpr, _, _ = ir.trace(ts, params, batch)
        compiled = compile_train_step(jaxpr, core.OneFOneB(2), dp_size=2)
        blob = pickle.dumps(compiled.programs)
        assert pickle.loads(blob)  # dp all-reduce / dp-mean payloads included

    def test_every_payload_is_pickle_clean(self):
        for schedule in (core.GPipe(3), core.ZBH1(3)):
            compiled, _ = _compiled(schedule=schedule)
            for prog in compiled.programs:
                for instr in prog:
                    pickle.dumps(instr)
