"""Unit tests for the MPMD compiler: placement inference, communication
inference, liveness, fusion — the §3.3/§4.2/§4.3/§4.4 passes."""

import numpy as np
import pytest

from repro import core, ir
from repro.core.compile import compile_train_step, find_batch_inputs
from repro.ir import nn, ops, pipeline_yield
from repro.runtime.instructions import Accumulate, Delete, Recv, RunTask, Send
from tests.helpers import rng


def _trace_problem(n_stages=3, n_mbs=4, mbsz=6, d=4, seed=0, label_smooth=False):
    r = rng(seed)
    X = r.randn(n_mbs, mbsz, d).astype(np.float32)
    Y = r.randn(n_mbs, mbsz, d).astype(np.float32)
    params = {f"w{i}": (r.randn(d, d) * 0.4).astype(np.float32) for i in range(n_stages)}

    def loss_fn(p, mb):
        x, y = mb
        h = x
        for i in range(n_stages):
            h = ops.matmul(h, p[f"w{i}"])
            if i < n_stages - 1:
                h = pipeline_yield(nn.relu(h))
        return ops.mean((h - y) ** 2.0)

    def train_step(params, batch):
        if label_smooth:
            # Figure 3 line 3: pre-loop computation on the labels
            x_in, y_in = batch
            batch = (x_in, ops.add(ops.mul(0.9, y_in), 0.01))

        def mg(mb):
            loss, grads = ir.value_and_grad(loss_fn)(params, mb)
            return grads, loss

        grads, loss = core.accumulate_grads(mg, None)(batch)
        new = ir.tree_map(lambda w, g: ops.sub(w, ops.mul(0.1, g)), params, grads)
        return new, loss

    jaxpr, _, _ = ir.trace(train_step, params, (X, Y))
    return jaxpr, params, (X, Y), train_step


class TestPlacementInference:
    def test_weights_pinned_to_their_stage_actor(self):
        jaxpr, params, batch, _ = _trace_problem()
        c = compile_train_step(jaxpr, core.OneFOneB(3))
        # flat inputs: w0, w1, w2, X, Y
        for k, expect_actor in [(0, 0), (1, 1), (2, 2)]:
            actors = [a for a, _ in c.input_placements[k]]
            assert expect_actor in actors, k

    def test_batch_goes_to_first_stage_labels_to_last(self):
        # §3.3 / Figure 3: X feeds stage 0, y feeds the loss stage
        jaxpr, params, batch, _ = _trace_problem()
        c = compile_train_step(jaxpr, core.OneFOneB(3))
        x_actors = [a for a, _ in c.input_placements[3]]
        y_actors = [a for a, _ in c.input_placements[4]]
        assert x_actors == [0]
        assert y_actors == [2]

    def test_pre_loop_computation_placed_with_consumer(self):
        # label smoothing depends only on y -> replicated onto the loss actor
        jaxpr, params, batch, _ = _trace_problem(label_smooth=True)
        c = compile_train_step(jaxpr, core.OneFOneB(3))
        pre_tasks = [
            (a, i) for a, prog in enumerate(c.programs)
            for i in prog if isinstance(i, RunTask) and i.meta.get("phase") == "pre"
        ]
        assert pre_tasks, "label smoothing must become pre-loop tasks"
        assert {a for a, _ in pre_tasks} == {2}

    def test_post_loop_update_follows_gradient_actor(self):
        jaxpr, params, batch, _ = _trace_problem()
        c = compile_train_step(jaxpr, core.OneFOneB(3))
        # each actor updates exactly its own stage's weights: the `sub`
        # tasks are spread across all three actors
        post_actors = {
            a for a, prog in enumerate(c.programs)
            for i in prog
            if isinstance(i, RunTask) and i.name == "post.sub"
        }
        assert post_actors == {0, 1, 2}

    def test_find_batch_inputs(self):
        jaxpr, *_ = _trace_problem()
        assert find_batch_inputs(jaxpr) == {3, 4}


class TestCommInference:
    def test_send_recv_counts_match(self):
        jaxpr, *_ = _trace_problem(n_mbs=6)
        c = compile_train_step(jaxpr, core.OneFOneB(3))
        sends = sum(isinstance(i, Send) for p in c.programs for i in p)
        recvs = sum(isinstance(i, Recv) for p in c.programs for i in p)
        assert sends == recvs > 0

    def test_pairwise_fifo_orders_agree(self):
        # the §4.2 invariant: the k-th send A->B carries the same key as
        # the k-th recv-from-A on B
        jaxpr, *_ = _trace_problem(n_mbs=8)
        c = compile_train_step(jaxpr, core.Interleaved1F1B(3, 1) if False else core.OneFOneB(3))
        send_order: dict[tuple[int, int], list[str]] = {}
        recv_order: dict[tuple[int, int], list[str]] = {}
        for a, prog in enumerate(c.programs):
            for instr in prog:
                if isinstance(instr, Send):
                    send_order.setdefault((a, instr.dst), []).append(instr.key)
                elif isinstance(instr, Recv):
                    recv_order.setdefault((instr.src, a), []).append(instr.key)
        assert send_order.keys() == recv_order.keys()
        for chan in send_order:
            assert send_order[chan] == recv_order[chan], chan

    def test_cross_actor_edges_only_between_adjacent_stages(self):
        jaxpr, *_ = _trace_problem()
        c = compile_train_step(jaxpr, core.OneFOneB(3))
        for a, prog in enumerate(c.programs):
            for instr in prog:
                if isinstance(instr, Send) and instr.key.startswith("mb"):
                    assert abs(instr.dst - a) == 1

    def test_naive_strategy_differs(self):
        jaxpr, *_ = _trace_problem()
        topo = compile_train_step(jaxpr, core.OneFOneB(3), comm_strategy="topo")
        naive = compile_train_step(jaxpr, core.OneFOneB(3), comm_strategy="naive")

        def recv_positions(c):
            out = []
            for prog in c.programs:
                out.append([k for k, i in enumerate(prog) if isinstance(i, Recv)])
            return out

        assert recv_positions(topo) != recv_positions(naive)

    def test_unknown_strategy_rejected(self):
        jaxpr, *_ = _trace_problem()
        with pytest.raises(ValueError):
            compile_train_step(jaxpr, core.OneFOneB(3), comm_strategy="yolo")


class TestLiveness:
    def test_every_defined_nonoutput_buffer_deleted(self):
        jaxpr, *_ = _trace_problem(n_mbs=4)
        c = compile_train_step(jaxpr, core.OneFOneB(3))
        protected = {src[2] for src in c.output_sources if src[0] == "buffer"}
        for prog in c.programs:
            defined, deleted = set(), set()
            for i in prog:
                if isinstance(i, RunTask):
                    defined.update(r.uid for r in i.out_refs)
                elif isinstance(i, Recv):
                    defined.add(i.ref.uid)
                elif isinstance(i, Accumulate):
                    defined.add(i.acc.uid)
                elif isinstance(i, Delete):
                    deleted.add(i.ref.uid)
            leaked = {
                u for u in defined - deleted - protected
                # accumulators feeding cross-actor combines are deleted by
                # the pending-deletions path after their send completes
                if not u.startswith(("acc.", "combine.", "dpm."))
            }
            assert not leaked, leaked

    def test_deletes_come_after_last_use(self):
        jaxpr, *_ = _trace_problem(n_mbs=4)
        c = compile_train_step(jaxpr, core.OneFOneB(3))
        for prog in c.programs:
            deleted_at: dict[str, int] = {}
            for k, i in enumerate(prog):
                if isinstance(i, Delete):
                    deleted_at[i.ref.uid] = k
            for k, i in enumerate(prog):
                uses = []
                if isinstance(i, RunTask):
                    uses = [r.uid for r in i.in_refs]
                elif isinstance(i, Send):
                    uses = [i.ref.uid]
                elif isinstance(i, Accumulate):
                    uses = [i.value.uid]
                for u in uses:
                    if u in deleted_at:
                        assert deleted_at[u] > k, (u, k)

    def test_memory_actually_bounded(self):
        # executing with more microbatches must not grow peak memory
        # proportionally under 1F1B (the §2.2.1 claim, measured end-to-end)
        _, params, _, train_step = _trace_problem(n_mbs=4)
        r = rng(42)
        d, mbsz = 4, 6

        def run(n_mbs):
            batch = (
                r.randn(n_mbs, mbsz, d).astype(np.float32),
                r.randn(n_mbs, mbsz, d).astype(np.float32),
            )
            step = core.RemoteMesh((3,)).distributed(train_step, schedule=core.OneFOneB(3))
            step(params, batch)
            # subtract per-step linear costs: batch slices live up front
            return max(step.peak_bytes_per_actor)

        p4, p16 = run(4), run(16)
        # batch buffers grow 4x; activations must not: total growth well
        # under proportional
        assert p16 < 2.5 * p4


class TestFusion:
    def test_single_program_per_actor(self):
        jaxpr, *_ = _trace_problem()
        c = compile_train_step(jaxpr, core.OneFOneB(3))
        assert len(c.programs) == 3
        assert all(len(p) > 0 for p in c.programs)

    def test_instruction_counts_property(self):
        jaxpr, *_ = _trace_problem()
        c = compile_train_step(jaxpr, core.OneFOneB(3))
        counts = c.instruction_counts
        assert counts["RunTask"] > 0 and counts["Delete"] > 0

    def test_requires_exactly_one_loop(self):
        def no_loop(x):
            return ops.mean(x)

        jaxpr, _, _ = ir.trace(no_loop, np.zeros((2, 2), np.float32))
        with pytest.raises(ValueError, match="exactly one"):
            compile_train_step(jaxpr, core.OneFOneB(2))

    def test_missing_schedule_rejected(self):
        jaxpr, *_ = _trace_problem()
        with pytest.raises(ValueError, match="schedule"):
            compile_train_step(jaxpr, None)
