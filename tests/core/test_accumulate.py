"""Tests for the accumulate_grads loop construct (§3.1)."""

import numpy as np
import pytest

from repro import ir, core
from repro.ir import ops
from repro.core.accumulate import ADD, STACK, pipeline_loop_p, reference_loop
from tests.helpers import rng


def _batch(n_mbs=4, mbsz=3, d=2, seed=0):
    return rng(seed).randn(n_mbs, mbsz, d).astype(np.float32)


class TestReferenceSemantics:
    def test_matches_manual_loop(self):
        X = _batch()

        def fn(mb):
            return (mb ** 2).sum(), (mb.sum(),)

        out_sum, (out_stack,) = reference_loop(fn, X)
        assert out_sum == pytest.approx(sum((X[i] ** 2).sum() for i in range(4)), rel=1e-5)
        np.testing.assert_allclose(out_stack, [X[i].sum() for i in range(4)], rtol=1e-5)

    def test_eager_accumulate_grads_is_reference(self):
        X = _batch(seed=1)

        def fn(mb):
            return ops.mul(mb, 2.0), ops.mean(mb)

        got = core.accumulate_grads(fn, None)((X,)) if False else core.accumulate_grads(fn, None)(X)
        want = reference_loop(fn, X)
        np.testing.assert_allclose(got[0], want[0], rtol=1e-6)
        np.testing.assert_allclose(got[1], want[1], rtol=1e-6)

    def test_pytree_batch(self):
        X, Y = _batch(seed=2), _batch(seed=3)

        def fn(mb):
            return ops.mean(ops.mul(mb["x"], mb["y"])), ops.mean(mb["x"])

        out = core.accumulate_grads(fn, None)({"x": X, "y": Y})
        assert np.asarray(out[1]).shape == (4,)

    def test_out_ops_override(self):
        X = _batch(seed=4)

        def fn(mb):
            return ops.mean(mb), ops.mean(mb)

        s1, s2 = core.accumulate_grads(fn, None, out_ops=("stack", "stack"))(X)
        assert np.asarray(s1).shape == (4,)
        assert np.asarray(s2).shape == (4,)

    def test_bad_out_ops_rejected(self):
        X = _batch(seed=5)

        def fn(mb):
            return ops.mean(mb), ops.mean(mb)

        with pytest.raises(ValueError):
            core.accumulate_grads(fn, None, out_ops=("fold",))(X)


class TestTracedLoop:
    def test_single_loop_eqn_recorded(self):
        X = _batch(seed=6)

        def train(X):
            def fn(mb):
                return ops.mean(mb), ops.mean(mb)

            return core.accumulate_grads(fn, None)(X)

        jaxpr, _, _ = ir.trace(train, X)
        loops = [e for e in jaxpr.eqns if e.prim is pipeline_loop_p]
        assert len(loops) == 1
        assert loops[0].params["n_mbs"] == 4
        assert loops[0].params["out_ops"] == (ADD, STACK)

    def test_closure_captured_as_loop_input(self):
        X = _batch(seed=7)
        W = rng(8).randn(2, 2).astype(np.float32)

        def train(W, X):
            def fn(mb):
                return ops.mean(ops.matmul(mb, W)), ops.mean(mb)

            return core.accumulate_grads(fn, None)(X)

        jaxpr, _, _ = ir.trace(train, W, X)
        loop = [e for e in jaxpr.eqns if e.prim is pipeline_loop_p][0]
        # invars: batch leaf + captured W
        assert len(loop.invars) == 2
        assert loop.params["n_batch_leaves"] == 1

    def test_traced_eval_matches_eager(self):
        X = _batch(seed=9)

        def train(X):
            def fn(mb):
                return (ops.mul(mb, 3.0)), ops.mean(mb)

            return core.accumulate_grads(fn, None)(X)

        jaxpr, _, _ = ir.trace(train, X)
        outs = ir.eval_jaxpr(jaxpr, [X])
        ref = train(X)
        np.testing.assert_allclose(outs[0], ref[0], rtol=1e-6)
        np.testing.assert_allclose(outs[1], ref[1], rtol=1e-6)

    def test_abstract_shapes(self):
        X = _batch(n_mbs=5, seed=10)

        def train(X):
            def fn(mb):
                return ops.mean(mb), ops.mean(mb)

            return core.accumulate_grads(fn, None)(X)

        jaxpr, _, _ = ir.trace(train, X)
        loop = [e for e in jaxpr.eqns if e.prim is pipeline_loop_p][0]
        assert loop.outvars[0].aval.shape == ()       # summed
        assert loop.outvars[1].aval.shape == (5,)     # stacked

    def test_mismatched_leading_axis_rejected(self):
        X = _batch(n_mbs=4, seed=11)
        Y = _batch(n_mbs=3, seed=12)

        def train(X, Y):
            def fn(mb):
                return ops.mean(ops.add(mb[0], 0.0)), ops.mean(mb[1])

            return core.accumulate_grads(fn, None)((X, Y))

        with pytest.raises(ValueError):
            ir.trace(train, X, Y)
