"""Differential suite: ``task_backend="codegen"`` vs ``"linear"``.

The codegen backend exec-compiles each lowered ``LinearProgram`` into one
straight-line Python function; the whole-actor variant
(``codegen_actor=True``) additionally fuses the engine's instruction loop
into one generated driver.  Both must be *bit-identical* to the linear VM
— same values, same dtypes — for every schedule in the gallery, for
data-parallel execution, and through the ``engine="mp"`` spawn/pool
paths.  Same differential pattern as PR 3's linear-vs-interpret suite:
the reference stays available forever, equivalence is asserted rather
than assumed.
"""

import signal

import numpy as np
import pytest

from repro import core, ir
from repro.core.compile import compile_train_step
from repro.ir import ops
from repro.ir.codegen import CodegenProgram, codegen
from repro.runtime.instructions import RunTask
from tests.core.test_linear_backend import (
    GALLERY,
    assert_bit_identical,
    make_problem,
)

HARD_TIMEOUT_S = 300


@pytest.fixture(autouse=True)
def _hard_timeout():
    """mp lanes must never wedge the suite, even if a watchdog regresses."""

    def fire(signum, frame):  # pragma: no cover - only on regression
        raise TimeoutError(f"test exceeded {HARD_TIMEOUT_S}s hard cap")

    old = signal.signal(signal.SIGALRM, fire)
    signal.alarm(HARD_TIMEOUT_S)
    yield
    signal.alarm(0)
    signal.signal(signal.SIGALRM, old)


class TestGalleryEquivalence:
    @pytest.mark.parametrize("schedule", GALLERY, ids=lambda s: s.name)
    def test_codegen_bit_identical_to_linear(self, schedule):
        ts, params, batch = make_problem(4, n_mbs=8)
        results = {}
        for backend in ("linear", "codegen"):
            mesh = core.RemoteMesh((schedule.n_actors,))
            step = mesh.distributed(ts, schedule=schedule, task_backend=backend)
            results[backend] = step(params, batch)
        assert_bit_identical(results["linear"], results["codegen"])

    @pytest.mark.parametrize("schedule", GALLERY, ids=lambda s: s.name)
    def test_fused_actor_driver_bit_identical(self, schedule):
        """codegen_actor=True replaces the event engine's instruction loop
        with one exec-compiled whole-mesh driver — values must not move."""
        ts, params, batch = make_problem(4, n_mbs=8)
        ref = core.RemoteMesh((schedule.n_actors,)).distributed(
            ts, schedule=schedule, task_backend="linear"
        )(params, batch)
        mesh = core.RemoteMesh((schedule.n_actors,), codegen_actor=True)
        step = mesh.distributed(ts, schedule=schedule, task_backend="codegen")
        for _ in range(2):  # steady state reuses the cached driver
            assert_bit_identical(ref, step(params, batch))
        assert step.last_result.engine == "fused"
        assert step.last_result.repolls == 0

    def test_data_parallel_bit_identical(self):
        ts, params, batch = make_problem(2, n_mbs=4, mbsz=8)
        results = {}
        for backend in ("linear", "codegen"):
            step = core.RemoteMesh((2, 2)).distributed(
                ts, schedule=core.OneFOneB(2), task_backend=backend
            )
            results[backend] = step(params, batch)
        assert_bit_identical(results["linear"], results["codegen"])

    def test_data_parallel_fused_driver_bit_identical(self):
        """The fused mesh driver folds the dp all-reduce in the engines'
        sorted-actor order — dp results stay bit-identical too."""
        ts, params, batch = make_problem(2, n_mbs=4, mbsz=8)
        ref = core.RemoteMesh((2, 2)).distributed(
            ts, schedule=core.OneFOneB(2), task_backend="linear"
        )(params, batch)
        step = core.RemoteMesh((2, 2), codegen_actor=True).distributed(
            ts, schedule=core.OneFOneB(2), task_backend="codegen"
        )
        assert_bit_identical(ref, step(params, batch))


class TestProgramBehaviour:
    def _jaxpr(self):
        x = np.arange(6, dtype=np.float32).reshape(2, 3)
        jaxpr, _, _ = ir.trace(
            lambda x: ops.mul(ops.add(x, 1.0), ops.tanh(x)), x
        )
        return jaxpr, x

    def test_cache_hit_on_jaxpr_identity(self):
        jaxpr, _ = self._jaxpr()
        assert codegen(jaxpr) is codegen(jaxpr)

    def test_source_is_exposed(self):
        jaxpr, x = self._jaxpr()
        prog = codegen(jaxpr)
        assert isinstance(prog.source, str)
        assert "def program(" in prog.source
        # liveness frees appear as plain rebinds to None
        assert "= None" in prog.source

    def test_matches_linear_and_interpreter(self):
        jaxpr, x = self._jaxpr()
        want = ir.eval_jaxpr(jaxpr, [x])
        got = codegen(jaxpr)([x])
        for w, g in zip(want, got):
            assert np.asarray(w).dtype == np.asarray(g).dtype
            np.testing.assert_array_equal(w, g)

    def test_active_trace_fallback_inlines(self):
        # calling a CodegenProgram under an active trace must splice the
        # jaxpr into the outer trace, exactly like eval_jaxpr
        x = np.full((3,), 2.0, np.float32)
        jaxpr, _, _ = ir.trace(lambda x: ops.mul(ops.add(x, 1.0), 2.0), x)
        prog = codegen(jaxpr)
        outer, _, _ = ir.trace(lambda x: ops.neg(prog([x])[0]), x)
        assert outer.n_eqns >= 3  # inlined, not opaque
        np.testing.assert_array_equal(
            ir.eval_jaxpr(outer, [x])[0], -(x + 1.0) * 2.0
        )

    def test_repeated_runs_are_independent(self):
        # donation/liveness must not leak state between calls
        r = np.random.RandomState(7)
        x = r.randn(4, 4).astype(np.float32)
        jaxpr, _, _ = ir.trace(lambda x: ops.add(ops.matmul(x, x), 1.0), x)
        prog = codegen(jaxpr)
        first = [np.array(v, copy=True) for v in prog([x])]
        second = prog([x])
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)

    def test_compiler_embeds_codegen_payloads(self):
        ts, params, batch = make_problem(3, n_mbs=6)
        jaxpr, _, _ = ir.trace(ts, params, batch)
        compiled = compile_train_step(
            jaxpr, core.OneFOneB(3), task_backend="codegen"
        )
        assert compiled.task_backend == "codegen"
        loop_fns = {
            id(instr.fn): instr.fn
            for prog in compiled.programs
            for instr in prog
            if isinstance(instr, RunTask) and instr.meta.get("phase") == "loop"
        }
        assert loop_fns
        assert all(
            isinstance(fn, CodegenProgram) for fn in loop_fns.values()
        )


class TestMpEngine:
    """The pickle-clean contract: ``__reduce__`` re-lowers worker-side, so
    mp spawn workers and the persistent pool ship codegen unchanged."""

    def test_pool_codegen_bit_identical(self):
        ts, params, batch = make_problem(4, n_mbs=4)
        ref = core.RemoteMesh((4,)).distributed(
            ts, schedule=core.OneFOneB(4), task_backend="linear"
        )(params, batch)
        mesh = core.RemoteMesh((4,), engine="mp")
        try:
            step = mesh.distributed(
                ts, schedule=core.OneFOneB(4), task_backend="codegen"
            )
            for _ in range(2):  # second submit hits the worker program cache
                assert_bit_identical(ref, step(params, batch))
        finally:
            mesh.close()

    def test_pool_fused_worker_driver_bit_identical(self):
        """codegen_actor=True on mp: workers regenerate a straight-line
        driver from the shipped program; results and timeline kinds are
        unchanged."""
        ts, params, batch = make_problem(4, n_mbs=4)
        ref = core.RemoteMesh((4,)).distributed(
            ts, schedule=core.OneFOneB(4), task_backend="linear"
        )(params, batch)
        mesh = core.RemoteMesh((4,), engine="mp", codegen_actor=True)
        try:
            step = mesh.distributed(
                ts, schedule=core.OneFOneB(4), task_backend="codegen"
            )
            for _ in range(2):
                assert_bit_identical(ref, step(params, batch))
            kinds = {e.kind for e in step.last_result.timeline}
            assert "task" in kinds  # wall-clock timeline fully preserved
        finally:
            mesh.close()

    @pytest.mark.slow
    @pytest.mark.parametrize("schedule", GALLERY, ids=lambda s: s.name)
    def test_pool_gallery_sweep(self, schedule):
        """Acceptance sweep: codegen == linear for the full gallery through
        the persistent pool (one warm mesh per actor width)."""
        ts, params, batch = make_problem(4, n_mbs=8)
        ref = core.RemoteMesh((schedule.n_actors,)).distributed(
            ts, schedule=schedule, task_backend="linear"
        )(params, batch)
        mesh = core.RemoteMesh((schedule.n_actors,), engine="mp",
                               codegen_actor=True)
        try:
            step = mesh.distributed(
                ts, schedule=schedule, task_backend="codegen"
            )
            assert_bit_identical(ref, step(params, batch))
        finally:
            mesh.close()


class TestFusionGuards:
    def test_cost_model_refused(self):
        from repro.runtime.clock import CostModel

        with pytest.raises(ValueError, match="codegen_actor"):
            core.RemoteMesh(
                (2,), codegen_actor=True, cost_model=CostModel()
            )

    def test_peak_bytes_needs_unfused_run(self):
        ts, params, batch = make_problem(2, n_mbs=4)
        step = core.RemoteMesh((2,), codegen_actor=True).distributed(
            ts, schedule=core.OneFOneB(2), task_backend="codegen"
        )
        step(params, batch)
        with pytest.raises(RuntimeError, match="unfused"):
            step.peak_bytes_per_actor
