"""Differential suite: ``task_backend="linear"`` vs ``"interpret"``.

The linear task VM must be *bit-identical* to the tree-walking
interpreter — same values, same dtypes — for every schedule in the
gallery, for data-parallel execution, and for the eager
``pipeline_loop`` reference path.  This mirrors the runtime's
event-vs-roundrobin differential pattern (PR 1): the reference backend
stays available forever, and equivalence is asserted rather than assumed.
"""

import numpy as np
import pytest

from repro import core, ir
from repro.core.compile import compile_train_step
from repro.ir import nn, ops, pipeline_yield
from repro.ir.linearize import LinearProgram
from tests.helpers import rng


def make_problem(n_stages, n_mbs=4, mbsz=6, d=8, seed=1):
    r = rng(seed)
    X = r.randn(n_mbs, mbsz, d).astype(np.float32)
    Y = r.randn(n_mbs, mbsz, d).astype(np.float32)
    params = {f"w{i}": (r.randn(d, d) * 0.3).astype(np.float32) for i in range(n_stages)}

    def loss_fn(p, mb):
        x, y = mb
        h = x
        for i in range(n_stages):
            h = nn.relu(ops.matmul(h, p[f"w{i}"])) if i < n_stages - 1 else ops.matmul(h, p[f"w{i}"])
            if i < n_stages - 1:
                h = pipeline_yield(h)
        return ops.mean((h - y) ** 2.0)

    def train_step(params, batch):
        def microbatch_grads(mb):
            loss, grads = ir.value_and_grad(loss_fn)(params, mb)
            return grads, loss

        grads, loss = core.accumulate_grads(microbatch_grads, None)(batch)
        new = ir.tree_map(lambda w, g: ops.sub(w, ops.mul(0.1, g)), params, grads)
        return new, loss

    return train_step, params, (X, Y)


def assert_bit_identical(a, b):
    fa, ta = ir.tree_flatten(a)
    fb, tb = ir.tree_flatten(b)
    assert repr(ta) == repr(tb)
    for x, y in zip(fa, fb):
        x, y = np.asarray(x), np.asarray(y)
        assert x.dtype == y.dtype
        np.testing.assert_array_equal(x, y)


# the full 10-schedule gallery at 4 pipeline stages (two-chunk
# placements — interleaved, BFS, and the ZB-V v-shape — run 4 stages on
# 2 actors; Hybrid1F1B exercises a tuner-shaped warmup vector)
GALLERY = [
    core.GPipe(4),
    core.OneFOneB(4),
    core.Eager1F1B(4),
    core.Hybrid1F1B(4, (5, 3, 1, 0)),
    core.ZBH1(4),
    core.ZBH2(4),
    core.ZBV(2),
    core.Interleaved1F1B(2, 2),
    core.LoopedBFS(2, 2),
    core.InterleavedZB(2, 2),
]


class TestGalleryEquivalence:
    @pytest.mark.parametrize("schedule", GALLERY, ids=lambda s: s.name)
    def test_backends_bit_identical(self, schedule):
        ts, params, batch = make_problem(4, n_mbs=8)
        results = {}
        for backend in ("linear", "interpret"):
            mesh = core.RemoteMesh((schedule.n_actors,))
            step = mesh.distributed(ts, schedule=schedule, task_backend=backend)
            results[backend] = step(params, batch)
        assert_bit_identical(results["linear"], results["interpret"])

    def test_data_parallel_bit_identical(self):
        ts, params, batch = make_problem(2, n_mbs=4, mbsz=8)
        results = {}
        for backend in ("linear", "interpret"):
            step = core.RemoteMesh((2, 2)).distributed(
                ts, schedule=core.OneFOneB(2), task_backend=backend
            )
            results[backend] = step(params, batch)
        assert_bit_identical(results["linear"], results["interpret"])


class TestCompilerWiring:
    def test_linear_is_default_and_recorded(self):
        ts, params, batch = make_problem(2)
        step = core.RemoteMesh((2,)).distributed(ts, schedule=core.OneFOneB(2))
        step(params, batch)
        assert step.compiled.task_backend == "linear"

    def test_unknown_backend_rejected(self):
        ts, params, batch = make_problem(2)
        jaxpr, _, _ = ir.trace(ts, params, batch)
        with pytest.raises(ValueError, match="task_backend"):
            compile_train_step(jaxpr, core.OneFOneB(2), task_backend="jit")

    def test_task_programs_cached_across_microbatches(self):
        """Every RunTask of the same stage task shares one LinearProgram:
        the one-time lowering amortizes over the whole schedule."""
        from repro.runtime.instructions import RunTask

        ts, params, batch = make_problem(3, n_mbs=6)
        jaxpr, _, _ = ir.trace(ts, params, batch)
        compiled = compile_train_step(jaxpr, core.OneFOneB(3))
        loop_fns = {
            id(instr.fn)
            for prog in compiled.programs
            for instr in prog
            if isinstance(instr, RunTask)
            and instr.meta.get("phase") == "loop"
            and instr.fn is not None
        }
        assert all(
            isinstance(instr.fn, LinearProgram)
            for prog in compiled.programs
            for instr in prog
            if isinstance(instr, RunTask) and instr.meta.get("phase") == "loop" and instr.fn is not None
        )
        # distinct programs == distinct tasks with a payload, not n_mbs x tasks
        n_payload_tasks = len(
            {id(t.jaxpr) for t in compiled.split.tasks}
        )
        assert len(loop_fns) <= n_payload_tasks


class TestEagerLoopPath:
    def test_pipeline_loop_impl_matches_reference(self):
        """Evaluating a traced train_step eagerly drives pipeline_loop's
        impl through the linear VM; it must match the pure-Python
        reference loop bit for bit."""
        ts, params, batch = make_problem(3, n_mbs=4)
        want = ts(params, batch)  # reference_loop (no trace active)
        jaxpr, _, out_tree = ir.trace(ts, params, batch)
        flat, _ = ir.tree_flatten((params, batch))
        got = ir.tree_unflatten(out_tree, ir.eval_jaxpr(jaxpr, flat))
        assert_bit_identical(want, got)


class TestLowerMemoization:
    def test_same_ir_instance_for_same_nmbs(self):
        s = core.OneFOneB(4)
        assert s.lower(8) is s.lower(8)
        assert s.lower(8) is not s.lower(6)

    def test_consumers_share_one_lowering(self):
        ts, params, batch = make_problem(4, n_mbs=8)
        s = core.ZBH1(4)
        jaxpr, _, _ = ir.trace(ts, params, batch)
        compiled = compile_train_step(jaxpr, s)
        from repro.viz import render_schedule

        render_schedule(s, 8)
        core.validate_schedule(s, 8)
        assert compiled.schedule_ir is s.lower(8)
