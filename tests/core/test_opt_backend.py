"""Differential suite for the algebraic optimizer at the compile level.

The optimizer (:mod:`repro.ir.opt`) rewrites stage jaxprs before
linearization, so the whole execution stack sits downstream of it.  The
contract mirrors the repo's backend/engine differentials: at
``opt_level <= 1`` an optimized compiled step is **bit-identical** to the
unoptimized one — for every schedule in the gallery, every task backend,
every engine, and under data parallelism; at ``opt_level=2`` (matmul
reassociation changes FP summation order) results are ``allclose``.
Wiring assertions pin what lands on :class:`CompiledStep`: the report,
the level, and the ``.L{level}`` program-key variant that keeps warm
worker caches from mixing optimized and unoptimized programs.
"""

import numpy as np
import pytest

from repro import core, ir
from repro.core.autotune import CostModel
from repro.core.compile import compile_train_step
from repro.runtime.instructions import RunTask
from tests.core.test_linear_backend import (
    GALLERY,
    assert_bit_identical,
    make_problem,
)


def _step(schedule, ts, *, optimize, backend="linear", engine="event",
          mesh_shape=None, **kw):
    mesh = core.RemoteMesh(mesh_shape or (schedule.n_actors,), engine=engine, **kw)
    return mesh, mesh.distributed(
        ts, schedule=schedule, task_backend=backend, optimize=optimize
    )


def _assert_allclose(a, b, rtol=1e-4, atol=1e-5):
    fa, ta = ir.tree_flatten(a)
    fb, tb = ir.tree_flatten(b)
    assert repr(ta) == repr(tb)
    for x, y in zip(fa, fb):
        np.testing.assert_allclose(np.asarray(x), np.asarray(y), rtol=rtol, atol=atol)


class TestLevel1BitIdentity:
    @pytest.mark.parametrize("schedule", GALLERY, ids=lambda s: s.name)
    def test_gallery_event_engine(self, schedule):
        ts, params, batch = make_problem(4, n_mbs=8)
        _, base = _step(schedule, ts, optimize=False)
        _, opt = _step(schedule, ts, optimize=True)
        assert_bit_identical(base(params, batch), opt(params, batch))

    @pytest.mark.parametrize("backend", ["interpret", "codegen"])
    def test_task_backends(self, backend):
        schedule = core.OneFOneB(4)
        ts, params, batch = make_problem(4, n_mbs=6)
        _, base = _step(schedule, ts, optimize=False, backend=backend)
        _, opt = _step(schedule, ts, optimize=True, backend=backend)
        assert_bit_identical(base(params, batch), opt(params, batch))

    def test_roundrobin_engine(self):
        schedule = core.ZBH1(4)
        ts, params, batch = make_problem(4, n_mbs=6)
        _, base = _step(schedule, ts, optimize=False, engine="roundrobin")
        _, opt = _step(schedule, ts, optimize=True, engine="roundrobin")
        assert_bit_identical(base(params, batch), opt(params, batch))

    def test_mp_pool_engine(self):
        """Optimized programs — memo prologues, pruned boundaries and all
        — run on real OS processes bit-identically to the event engine."""
        schedule = core.OneFOneB(2)
        ts, params, batch = make_problem(2, n_mbs=4)
        _, ref = _step(schedule, ts, optimize=True)
        want = ref(params, batch)
        mesh, opt = _step(
            schedule, ts, optimize=True, engine="mp", mp_watchdog_s=60.0
        )
        try:
            assert_bit_identical(want, opt(params, batch))
        finally:
            mesh.close()

    def test_data_parallel(self):
        ts, params, batch = make_problem(2, n_mbs=4, mbsz=8)
        schedule = core.OneFOneB(2)
        _, base = _step(schedule, ts, optimize=False, mesh_shape=(2, 2))
        _, opt = _step(schedule, ts, optimize=True, mesh_shape=(2, 2))
        assert_bit_identical(base(params, batch), opt(params, batch))

    def test_single_microbatch_still_exact(self):
        # n_mbs=1 disables memoization but not CSE/DCE
        ts, params, batch = make_problem(3, n_mbs=1)
        schedule = core.GPipe(3)
        _, base = _step(schedule, ts, optimize=False)
        _, opt = _step(schedule, ts, optimize=True)
        assert_bit_identical(base(params, batch), opt(params, batch))


class TestLevel2:
    def test_allclose_to_unoptimized(self):
        ts, params, batch = make_problem(4, n_mbs=6)
        schedule = core.OneFOneB(4)
        _, base = _step(schedule, ts, optimize=False)
        _, opt = _step(schedule, ts, optimize=2)
        _assert_allclose(base(params, batch), opt(params, batch))

    def test_level_recorded(self):
        ts, params, batch = make_problem(2)
        _, step = _step(core.OneFOneB(2), ts, optimize=2)
        step(params, batch)
        assert step.compiled.opt_level == 2
        assert step.compiled.opt_report.level == 2


class TestCompiledStepWiring:
    def test_default_is_level1_with_report(self):
        ts, params, batch = make_problem(3, n_mbs=4)
        jaxpr, _, _ = ir.trace(ts, params, batch)
        compiled = compile_train_step(jaxpr, core.OneFOneB(3))
        assert compiled.opt_level == 1
        rep = compiled.opt_report
        assert rep is not None and rep.level == 1
        assert rep.eqns_after < rep.eqns_before
        assert ".L1" in compiled.program_key

    def test_optimize_false_is_level0(self):
        ts, params, batch = make_problem(2)
        jaxpr, _, _ = ir.trace(ts, params, batch)
        compiled = compile_train_step(jaxpr, core.OneFOneB(2), optimize=False)
        assert compiled.opt_level == 0
        assert ".L0" in compiled.program_key

    def test_program_keys_distinguish_levels(self):
        ts, params, batch = make_problem(2)
        jaxpr, _, _ = ir.trace(ts, params, batch)
        keys = {
            compile_train_step(
                jaxpr, core.OneFOneB(2), optimize=lvl
            ).program_key
            for lvl in (0, 1, 2)
        }
        assert len(keys) == 3

    def test_memo_prologues_emitted_once_per_step(self):
        # the MLP backward hoists weight transposes: memo tasks must
        # appear in the per-actor programs, tagged phase="memo", exactly
        # once each (once per *step*, not per microbatch)
        ts, params, batch = make_problem(3, n_mbs=6)
        jaxpr, _, _ = ir.trace(ts, params, batch)
        compiled = compile_train_step(jaxpr, core.OneFOneB(3))
        memo = [
            instr
            for prog in compiled.programs
            for instr in prog
            if isinstance(instr, RunTask) and instr.meta.get("phase") == "memo"
        ]
        assert memo, "expected hoisted memo prologues on this workload"
        names = [m.name for m in memo]
        assert len(names) == len(set(names))
        for m in memo:
            assert m.meta.get("kind") == "memo"
            assert "stage" in m.meta

    def test_invalid_level_rejected(self):
        ts, params, batch = make_problem(2)
        jaxpr, _, _ = ir.trace(ts, params, batch)
        with pytest.raises(ValueError, match="optimize"):
            compile_train_step(jaxpr, core.OneFOneB(2), optimize=7)

    def test_from_tasks_boundary_shrinks(self):
        # the cost model built from the optimized split budgets less
        # wire traffic — the same accounting ScheduleIR.stats() totals
        # as cross_boundary_bytes
        ts, params, batch = make_problem(4, n_mbs=4)
        jaxpr, _, _ = ir.trace(ts, params, batch)
        base = compile_train_step(jaxpr, core.OneFOneB(4), optimize=False)
        opt = compile_train_step(jaxpr, core.OneFOneB(4), optimize=True)
        cm_base = CostModel.from_tasks(base.split)
        cm_opt = CostModel.from_tasks(opt.split)
        assert sum(cm_opt.boundary) <= sum(cm_base.boundary)
        ir_sched = core.OneFOneB(4).lower(4)
        assert (
            ir_sched.stats(cost_model=cm_opt)["cross_boundary_bytes"]
            <= ir_sched.stats(cost_model=cm_base)["cross_boundary_bytes"]
        )


class TestReplayTuneOnOptimizedRun:
    def test_from_result_excludes_memo_phase(self):
        # adversarial timeline: a memo-phase event claiming unit="fwd"
        # must not vote — only loop-phase (or phase-less simulator)
        # events feed the per-(stage, kind) means
        from repro.runtime.executor import ExecutionResult, TimelineEvent

        def ev(name, start, end, meta):
            return TimelineEvent(
                actor=0, kind="task", name=name, start=start, end=end, meta=meta
            )

        res = ExecutionResult(
            makespan=60.0,
            timeline=[
                ev("memo.t0", 0.0, 50.0, {"phase": "memo", "stage": 0, "unit": "fwd"}),
                ev("f0", 50.0, 51.0, {"phase": "loop", "stage": 0, "unit": "fwd", "kind": "fwd"}),
                ev("f1", 51.0, 52.0, {"phase": "loop", "stage": 0, "unit": "fwd", "kind": "fwd"}),
                ev("b0", 52.0, 54.0, {"phase": "loop", "stage": 0, "unit": "bwd", "kind": "bwd"}),
            ],
            actor_finish=[54.0],
            p2p_bytes=0,
            p2p_count=0,
        )
        cm = CostModel.from_result(res, 1)
        assert cm.fwd[0] == pytest.approx(1.0)  # not skewed by the 50s memo
        assert cm.bwd[0] == pytest.approx(2.0)

    def test_replay_tune_round_trip_on_real_optimized_run(self):
        # measure an optimized run, rebuild the cost table, and compare
        # against the table from an unoptimized run of the same step: the
        # memo prologue must not inflate any stage's per-microbatch rate
        ts, params, batch = make_problem(3, n_mbs=6)
        _, base = _step(core.OneFOneB(3), ts, optimize=False)
        base(params, batch)
        cm_base = CostModel.from_result(base.last_result, 3)
        _, opt = _step(core.OneFOneB(3), ts, optimize=True)
        opt(params, batch)
        # the optimized timeline genuinely carries memo-phase events —
        # the hazard this sweep guards against is present, not absent
        assert any(
            e.kind == "task" and e.meta.get("phase") == "memo"
            for e in opt.last_result.timeline
        )
        cm_opt = CostModel.from_result(opt.last_result, 3)
        assert cm_opt.n_stages == cm_base.n_stages == 3
        assert all(f >= 0 for f in cm_opt.fwd)
        assert all(b >= 0 for b in cm_opt.bwd)
        # wall-clock is noisy, but a memo leak would add the *whole*
        # prologue to one microbatch's vote — an order-of-magnitude
        # skew, far outside any plausible timing jitter
        for s in range(3):
            assert cm_opt.fwd[s] < 50 * cm_base.fwd[s] + 1e-3
            assert cm_opt.bwd[s] < 50 * cm_base.bwd[s] + 1e-3
