"""Autotuner tests: cost models (analytic, traced, measured), ranked
search with memory budgets, wait-profile-driven refinement, and the
``schedule="auto"`` compile entry point."""

import numpy as np
import pytest

from repro import core, ir
from repro.core.autotune import CostModel, TuneReport, default_candidates, tune
from repro.ir import nn, ops, pipeline_yield
from repro.core.schedules import BWD, BWD_I, BWD_W, FWD
from repro.perf.pipeline_sim import price_schedule
from tests.helpers import rng


def skewed_cost(p=4, head=3.0):
    """Uniform stages with an expensive last (head) stage."""
    fwd = tuple(1.0 if s < p - 1 else head for s in range(p))
    return CostModel(fwd=fwd, bwd=tuple(2 * f for f in fwd))


class TestCostModel:
    def test_uniform(self):
        cm = CostModel.uniform(3)
        assert cm.n_stages == 3
        assert cm.unit_time(0, FWD) == 1.0
        assert cm.unit_time(2, BWD) == 2.0
        assert cm.skew == 1.0

    def test_split_backward_fractions(self):
        cm = CostModel.uniform(2, bwd_time=3.0)
        assert cm.unit_time(1, BWD_I, 0.5) == pytest.approx(1.5)
        assert cm.unit_time(1, BWD_W, 0.5) == pytest.approx(1.5)
        assert cm.unit_time(1, BWD_I, 0.25) + cm.unit_time(1, BWD_W, 0.25) == pytest.approx(3.0)

    def test_rejects_mismatched_stages(self):
        with pytest.raises(ValueError):
            CostModel(fwd=(1.0, 1.0), bwd=(2.0,))
        with pytest.raises(ValueError):
            CostModel(fwd=(1.0,), bwd=(2.0,), act_bytes=(1.0, 1.0))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unit kind"):
            CostModel.uniform(2).unit_time(0, "nope")

    def test_from_kernels_head_stage_is_heavier(self):
        from repro.cluster.specs import DGX_H100
        from repro.perf import GPT3_175B, JAX_KERNELS

        cm = CostModel.from_kernels(
            GPT3_175B, DGX_H100.gpu, JAX_KERNELS,
            n_stages=4, layers_per_stage=2, mbs=1, tp=8,
        )
        assert cm.n_stages == 4
        assert cm.fwd[3] > cm.fwd[0]  # the logits surcharge
        assert cm.fwd[0] == cm.fwd[1] == cm.fwd[2]
        assert cm.skew > 1.05
        assert cm.act_bytes[0] > 0 and cm.boundary[0] > 0

    def test_from_result_replays_measured_durations(self):
        # price a schedule under a known skewed table, then rebuild the
        # table from the resulting timeline: the replay must round-trip
        p = 3
        want = skewed_cost(p)
        res = price_schedule(core.OneFOneB(p), 6, want)
        got = CostModel.from_result(res, p)
        assert got.fwd == pytest.approx(want.fwd)
        assert got.bwd == pytest.approx(want.bwd)

    def test_from_result_resums_split_backwards(self):
        p = 3
        want = skewed_cost(p)
        res = price_schedule(core.ZBH1(p), 6, want)
        got = CostModel.from_result(res, p)
        assert got.bwd == pytest.approx(want.bwd)

    def test_from_result_rejects_unannotated_timeline(self):
        from repro.runtime.executor import ExecutionResult

        empty = ExecutionResult(
            makespan=0.0, timeline=[], actor_finish=[0.0],
            p2p_bytes=0, p2p_count=0,
        )
        with pytest.raises(ValueError, match="no stage-annotated"):
            CostModel.from_result(empty, 2)


class TestDefaultCandidates:
    def test_one_stage_per_rank_family(self):
        names = {type(s).__name__ for s in default_candidates(4)}
        assert names == {"GPipe", "OneFOneB", "Eager1F1B", "ZBH1", "ZBH2"}

    def test_two_chunk_family_includes_zbv(self):
        names = {type(s).__name__ for s in default_candidates(4, 8)}
        assert names == {"Interleaved1F1B", "LoopedBFS", "InterleavedZB", "ZBV"}

    def test_higher_repeat_has_no_zbv(self):
        names = {type(s).__name__ for s in default_candidates(2, 6)}
        assert "ZBV" not in names

    def test_indivisible_stage_count_rejected(self):
        with pytest.raises(ValueError):
            default_candidates(4, 6)


class TestTune:
    def test_skewed_workload_ranks_zero_bubble_above_gpipe(self):
        report = tune(skewed_cost(4), 4, 8)
        assert report.best.schedule.backward_split  # a ZB family wins
        names = [e.name for e in report.feasible]
        assert names.index(report.best.name) < names.index("GPipe")
        assert report.speedup_vs("GPipe") > 1.0

    def test_memory_budget_excludes_over_bound_schedules(self):
        cm = skewed_cost(4)
        # 1F1B-bound budget: 4 live activations/rank (act_bytes = 1 each)
        report = tune(cm, 4, 8, memory_budget=4.0)
        excluded = {e.name for e in report.entries if not e.feasible}
        assert "GPipe" in excluded  # holds all 8
        assert "ZB-H2" in excluded  # holds 2p - 1 = 7
        assert report.best.name in ("ZB-H1", "OneFOneB")
        for e in report.entries:
            if not e.feasible:
                assert "budget" in e.reason or "over" in e.reason

    def test_speedup_vs_excluded_candidate_rejected(self):
        # a memory-excluded candidate carries an *analytic* makespan
        # (no comm costs), which must not silently mix with the
        # engine-priced entries in a speedup ratio
        report = tune(skewed_cost(4), 4, 8, memory_budget=4.0)
        with pytest.raises(ValueError, match="not comparable"):
            report.speedup_vs("GPipe")
        with pytest.raises(KeyError):
            report.speedup_vs("NoSuchSchedule")

    def test_no_feasible_schedule_raises_on_best(self):
        report = tune(skewed_cost(4), 4, 8, memory_budget=0.5)
        assert not report.feasible
        with pytest.raises(ValueError, match="no feasible"):
            report.best

    def test_shape_incompatible_candidates_excluded_not_fatal(self):
        # interleaved needs n_mbs % p == 0; n_mbs = 6 over 4 ranks fails
        cm = CostModel.uniform(8)
        report = tune(cm, 4, 6, rounds=1)
        bad = [e for e in report.entries if not e.feasible]
        assert any("divisible" in e.reason for e in bad)
        assert report.best.feasible

    def test_second_round_shrinks_makespan_under_latency(self):
        # skewed costs + transfer latency: the wait profile shows the
        # downstream ranks parked, warmup shifts upstream, makespan drops
        cm = CostModel(fwd=(2.0, 1.0, 1.0, 1.0), bwd=(4.0, 2.0, 2.0, 2.0))
        cands = lambda: [core.GPipe(4), core.OneFOneB(4)]
        r1 = tune(cm, 4, 8, candidates=cands(), rounds=1, p2p_latency_s=0.5)
        r2 = tune(cm, 4, 8, candidates=cands(), rounds=2, p2p_latency_s=0.5)
        assert r2.rounds == 2
        assert r2.best.makespan < r1.best.makespan
        assert r2.best.round == 1  # a wait-profile proposal won
        assert type(r2.best.schedule).__name__ == "Hybrid1F1B"

    def test_refinement_never_hurts(self):
        cm = skewed_cost(4)
        r1 = tune(cm, 4, 8, rounds=1)
        r2 = tune(cm, 4, 8, rounds=2)
        assert r2.best.makespan <= r1.best.makespan

    def test_refinement_proposals_respect_memory_budget(self):
        cm = CostModel(fwd=(2.0, 1.0, 1.0, 1.0), bwd=(4.0, 2.0, 2.0, 2.0))
        budget = 5.0  # excludes the eager-style warmups (peak warmup+1)
        report = tune(cm, 4, 8, memory_budget=budget, p2p_latency_s=0.5)
        for e in report.feasible:
            assert e.peak_act_bytes <= budget

    def test_tie_break_sweep_reported(self):
        report = tune(skewed_cost(4), 4, 8)
        assert set(report.tie_break_visits) == {"fifo", "depth_first", "rank"}
        assert report.tie_break in report.tie_break_visits
        best_visits = report.tie_break_visits[report.tie_break]
        assert all(v >= best_visits for v in report.tie_break_visits.values())

    def test_two_chunk_search_prices_zbv(self):
        cm = CostModel.uniform(8, fwd_time=0.5, bwd_time=1.0)
        report = tune(cm, 4, 8, rounds=1)
        priced = {e.name for e in report.feasible}
        assert "ZB-V" in priced
        assert report.best.name == "ZB-V"  # zero-bubble at v=2 design point

    def test_report_renders(self):
        from repro.viz import render_tune_report

        report = tune(skewed_cost(4), 4, 8, memory_budget=6.0)
        out = render_tune_report(report)
        assert "excluded" in out and "tie-break sweep" in out
        assert report.best.name in out


def make_problem(widths, n_mbs=8, mbsz=6, seed=1):
    """A pipeline with per-stage widths (uneven = skewed stage costs)."""
    r = rng(seed)
    X = r.randn(n_mbs, mbsz, widths[0]).astype(np.float32)
    Y = r.randn(n_mbs, mbsz, widths[-1]).astype(np.float32)
    params = {
        f"w{i}": (r.randn(widths[i], widths[i + 1]) * 0.3).astype(np.float32)
        for i in range(len(widths) - 1)
    }
    n_stages = len(widths) - 1

    def loss_fn(p, mb):
        x, y = mb
        h = x
        for i in range(n_stages):
            h = ops.matmul(h, p[f"w{i}"])
            if i < n_stages - 1:
                h = pipeline_yield(nn.relu(h))
        return ops.mean((h - y) ** 2.0)

    def train_step(params, batch):
        def mg(mb):
            loss, grads = ir.value_and_grad(loss_fn)(params, mb)
            return grads, loss

        grads, loss = core.accumulate_grads(mg, None)(batch)
        new = ir.tree_map(lambda w, g: ops.sub(w, ops.mul(0.05, g)), params, grads)
        return new, loss

    return train_step, params, (X, Y), n_stages


class TestScheduleAuto:
    def test_auto_compiles_and_stores_report(self):
        ts, params, batch, p = make_problem([8, 8, 8, 8, 8])
        step = core.RemoteMesh((p,)).distributed(ts, schedule="auto")
        step(params, batch)
        assert step.compiled.tune_report is not None
        assert step.compiled.schedule is step.compiled.tune_report.best.schedule

    def test_auto_matches_explicit_schedule_bit_for_bit(self):
        ts, params, batch, p = make_problem([8, 8, 8, 8, 8])
        mesh = core.RemoteMesh((p,))
        auto = mesh.distributed(ts, schedule="auto")(params, batch)
        picked = None
        # recompile with the winner passed explicitly
        step2 = core.RemoteMesh((p,)).distributed(ts, schedule="auto")
        step2(params, batch)
        picked = step2.compiled.schedule
        explicit = mesh.distributed(ts, schedule=picked)(params, batch)
        for a, b in zip(ir.tree_leaves(auto), ir.tree_leaves(explicit)):
            np.testing.assert_array_equal(np.asarray(a), np.asarray(b))

    def test_auto_cost_model_sees_width_skew(self):
        # one wide stage: its flops estimate must dominate the table
        ts, params, batch, p = make_problem([4, 32, 4, 4])
        step = core.RemoteMesh((p,)).distributed(ts, schedule="auto")
        step(params, batch)
        cm = step.compiled.tune_report.cost_model
        assert cm.fwd[0] > cm.fwd[2]  # stage 0 (4 -> 32 matmul + 32-wide relu)
        assert cm.skew > 1.5

    def test_auto_respects_memory_budget(self):
        ts, params, batch, p = make_problem([8, 8, 8, 8, 8])
        step = core.RemoteMesh((p,)).distributed(ts, schedule="auto")
        step(params, batch)
        unbounded = step.compiled.tune_report
        # budget at the 1F1B byte level excludes the doubled-warmup family
        budget = max(
            e.peak_act_bytes for e in unbounded.entries if e.name == "OneFOneB"
        )
        step2 = core.RemoteMesh((p,)).distributed(
            ts, schedule="auto", memory_budget=budget
        )
        step2(params, batch)
        report = step2.compiled.tune_report
        assert report.memory_budget == budget
        assert {"GPipe", "ZB-H2"} <= {
            e.name for e in report.entries if not e.feasible
        }
        assert report.best.peak_act_bytes <= budget

    def test_unknown_schedule_string_rejected(self):
        ts, params, batch, p = make_problem([8, 8, 8])
        with pytest.raises(ValueError, match="auto"):
            core.RemoteMesh((p,)).distributed(ts, schedule="fastest")

    def test_compile_level_auto_without_mesh(self):
        ts, params, batch, p = make_problem([8, 8, 8, 8, 8])
        jaxpr, _, _ = ir.trace(ts, params, batch)
        compiled = core.compile_train_step(jaxpr, "auto")
        assert compiled.tune_report is not None
        assert compiled.schedule.n_stages == p
