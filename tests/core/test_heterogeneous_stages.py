"""Non-homogeneous pipeline stages (§2.2.2).

The GSPMD encoding of pipeline parallelism requires *homogeneous* stages —
identical dataflow and shapes — because it stacks the stage weights on a
leading dimension. A core claim of the paper is that the MPMD formulation
has no such restriction. These tests pipeline models whose stages differ
in width, depth, and even operator mix, and hold the distributed result to
the single-device reference.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import core, ir
from repro.ir import nn, ops, pipeline_yield
from tests.helpers import rng


def _heterogeneous_problem(widths, n_mbs=4, mbsz=6, seed=0):
    """A pipeline whose stage i maps widths[i] -> widths[i+1], with a
    different activation function per stage."""
    r = rng(seed)
    acts = [nn.relu, ops.tanh, nn.gelu, nn.silu]
    X = r.randn(n_mbs, mbsz, widths[0]).astype(np.float32)
    Y = r.randn(n_mbs, mbsz, widths[-1]).astype(np.float32)
    params = {
        f"w{i}": (r.randn(widths[i], widths[i + 1]) * 0.4).astype(np.float32)
        for i in range(len(widths) - 1)
    }
    n_stages = len(widths) - 1

    def loss_fn(p, mb):
        x, y = mb
        h = x
        for i in range(n_stages):
            h = ops.matmul(h, p[f"w{i}"])
            if i < n_stages - 1:
                h = pipeline_yield(acts[i % len(acts)](h))
        return ops.mean((h - y) ** 2.0)

    def train_step(params, batch):
        def mg(mb):
            loss, grads = ir.value_and_grad(loss_fn)(params, mb)
            return grads, loss

        grads, loss = core.accumulate_grads(mg, None)(batch)
        new = ir.tree_map(lambda w, g: ops.sub(w, ops.mul(0.05, g)), params, grads)
        return new, loss

    return train_step, params, (X, Y), n_stages


class TestHeterogeneousStages:
    def test_different_widths_per_stage(self):
        train_step, params, batch, p = _heterogeneous_problem([4, 16, 2, 8])
        ref_p, _ = train_step(params, batch)
        step = core.RemoteMesh((p,)).distributed(train_step, schedule=core.OneFOneB(p))
        out_p, _ = step(params, batch)
        for k in params:
            np.testing.assert_allclose(out_p[k], ref_p[k], atol=1e-5)

    def test_bottleneck_stage(self):
        # a 1-unit bottleneck in the middle: boundary tensors differ by 16x
        train_step, params, batch, p = _heterogeneous_problem([8, 1, 16])
        ref_p, _ = train_step(params, batch)
        step = core.RemoteMesh((p,)).distributed(train_step, schedule=core.OneFOneB(p))
        out_p, _ = step(params, batch)
        for k in params:
            np.testing.assert_allclose(out_p[k], ref_p[k], atol=1e-5)

    def test_unequal_depth_stages(self):
        # stage 0 has 3 layers, stage 1 has 1 — wildly unbalanced compute
        r = rng(3)
        d = 6
        params = {f"w{i}": (r.randn(d, d) * 0.4).astype(np.float32) for i in range(4)}
        X = r.randn(4, 5, d).astype(np.float32)
        Y = r.randn(4, 5, d).astype(np.float32)

        def loss_fn(p, mb):
            x, y = mb
            h = x
            for i in range(3):
                h = nn.relu(ops.matmul(h, p[f"w{i}"]))
            h = pipeline_yield(h)
            h = ops.matmul(h, p["w3"])
            return ops.mean((h - y) ** 2.0)

        def train_step(params, batch):
            def mg(mb):
                loss, grads = ir.value_and_grad(loss_fn)(params, mb)
                return grads, loss

            grads, loss = core.accumulate_grads(mg, None)(batch)
            new = ir.tree_map(lambda w, g: ops.sub(w, ops.mul(0.05, g)), params, grads)
            return new, loss

        ref_p, _ = train_step(params, (X, Y))
        step = core.RemoteMesh((2,)).distributed(train_step, schedule=core.OneFOneB(2))
        out_p, _ = step(params, (X, Y))
        for k in params:
            np.testing.assert_allclose(out_p[k], ref_p[k], atol=1e-5)

    def test_mixed_operator_stages(self):
        # stage 0: embedding lookup; stage 1: dense head — different op mixes
        r = rng(4)
        vocab, d = 12, 8
        params = {
            "emb": (r.randn(vocab, d) * 0.5).astype(np.float32),
            "head": (r.randn(d, vocab) * 0.5).astype(np.float32),
        }
        tokens = r.randint(0, vocab, (4, 5, 3)).astype(np.int32)
        targets = r.randint(0, vocab, (4, 5, 3)).astype(np.int32)

        def loss_fn(p, mb):
            t, y = mb
            h = pipeline_yield(ops.take(p["emb"], t))
            logits = ops.matmul(h, p["head"])
            return ops.mean(nn.softmax_cross_entropy(logits, nn.one_hot(y, vocab)))

        def train_step(params, batch):
            def mg(mb):
                loss, grads = ir.value_and_grad(loss_fn)(params, mb)
                return grads, loss

            grads, loss = core.accumulate_grads(mg, None)(batch)
            new = ir.tree_map(lambda w, g: ops.sub(w, ops.mul(0.05, g)), params, grads)
            return new, loss

        ref_p, _ = train_step(params, (tokens, targets))
        step = core.RemoteMesh((2,)).distributed(train_step, schedule=core.OneFOneB(2))
        out_p, _ = step(params, (tokens, targets))
        for k in params:
            np.testing.assert_allclose(out_p[k], ref_p[k], atol=1e-5)

    @given(
        seed=st.integers(0, 500),
        widths=st.lists(st.sampled_from([2, 4, 6, 8, 12]), min_size=3, max_size=5),
    )
    @settings(max_examples=10, deadline=None)
    def test_random_heterogeneous_pipelines(self, seed, widths):
        train_step, params, batch, p = _heterogeneous_problem(widths, seed=seed)
        ref_p, _ = train_step(params, batch)
        step = core.RemoteMesh((p,)).distributed(train_step, schedule=core.OneFOneB(p))
        out_p, _ = step(params, batch)
        for k in params:
            np.testing.assert_allclose(out_p[k], ref_p[k], atol=1e-4)
