"""Schedule-IR tests: the dependency-explicit table every consumer walks.

Covers the tentpole invariants: every schedule family lowers and
validates over an n_mbs grid, slot/edge counts follow closed forms,
intra/cross classification matches placement, resource annotations
balance, the topological order matches the legacy helper, and the graph
checks (deadlock, memory bound) reject bad schedules.
"""

import pytest

from repro.core.schedule_ir import ScheduleIR, iter_unit_deps, lower_schedule
from repro.core.schedules import (
    BWD,
    BWD_I,
    BWD_W,
    FWD,
    Eager1F1B,
    GPipe,
    Interleaved1F1B,
    InterleavedZB,
    LoopedBFS,
    OneFOneB,
    Schedule,
    Unit,
    ZBH1,
    ZBH2,
    toposort_units,
)


def all_schedules(p=4, v=2):
    return [
        GPipe(p),
        OneFOneB(p),
        Eager1F1B(p),
        ZBH1(p),
        ZBH2(p),
        Interleaved1F1B(p, v),
        LoopedBFS(p, v),
        InterleavedZB(p, v),
    ]


GRID = [sched for p, v in [(2, 2), (4, 2), (4, 3)] for sched in all_schedules(p, v)]


class TestLoweringGrid:
    @pytest.mark.parametrize("sched", GRID, ids=lambda s: f"{s.name}-p{s.n_actors}")
    @pytest.mark.parametrize("m_mult", [1, 2, 4])
    def test_every_schedule_lowers_and_validates(self, sched, m_mult):
        n_mbs = sched.n_actors * m_mult
        ir = sched.lower(n_mbs).validate()
        assert isinstance(ir, ScheduleIR)

    @pytest.mark.parametrize("sched", all_schedules(), ids=lambda s: s.name)
    def test_slot_count_closed_form(self, sched):
        n_mbs = 8
        ir = sched.lower(n_mbs)
        kinds = 3 if sched.backward_split else 2
        assert ir.n_slots == n_mbs * sched.n_stages * kinds
        # every unit exactly once
        assert len({s.key for row in ir.slots for s in row}) == ir.n_slots

    @pytest.mark.parametrize("sched", all_schedules(), ids=lambda s: s.name)
    def test_edge_count_closed_form(self, sched):
        # fwd: stage>0 has one dep; bwd: fwd dep + chain dep for stage<last;
        # bwd_i: same; bwd_w: exactly one local dep
        n_mbs, S = 8, sched.n_stages
        ir = sched.lower(n_mbs)
        if sched.backward_split:
            expected = n_mbs * ((S - 1) + S + (S - 1) + S)
        else:
            expected = n_mbs * ((S - 1) + S + (S - 1))
        assert ir.n_edges == expected
        assert ir.n_edges == ir.n_intra_edges + ir.n_cross_edges

    @pytest.mark.parametrize("sched", all_schedules(), ids=lambda s: s.name)
    def test_cross_edges_match_placement(self, sched):
        ir = sched.lower(8)
        for producer, consumer in ir.edges():
            crosses = producer.rank != consumer.rank
            assert (producer in ir.cross_deps(consumer)) == crosses
            assert (consumer in ir.cross_consumers(producer)) == crosses

    @pytest.mark.parametrize("sched", all_schedules(), ids=lambda s: s.name)
    def test_acquire_release_balance(self, sched):
        # every rank acquires (forwards) exactly as many activation
        # buffers as it releases (monolithic/weight-gradient backwards)
        ir = sched.lower(8)
        for row in ir.slots:
            assert sum(s.acquires for s in row) == sum(s.releases for s in row)

    @pytest.mark.parametrize("sched", all_schedules(), ids=lambda s: s.name)
    def test_toposort_matches_legacy_helper(self, sched):
        ir = sched.lower(8)
        assert [(s.rank, s.unit) for s in ir.toposort()] == toposort_units(sched, 8)

    @pytest.mark.parametrize("sched", all_schedules(), ids=lambda s: s.name)
    def test_toposort_respects_edges_and_program_order(self, sched):
        ir = sched.lower(8)
        pos = {s.key: i for i, s in enumerate(ir.toposort())}
        for producer, consumer in ir.edges():
            assert pos[producer.key] < pos[consumer.key]
        for row in ir.slots:
            for a, b in zip(row, row[1:]):
                assert pos[a.key] < pos[b.key]


class TestResolution:
    def test_deps_resolve_to_slots(self):
        ir = ZBH1(3).lower(6)
        for row in ir.slots:
            for slot in row:
                want = {
                    (d.mb, d.stage, d.kind)
                    for d in iter_unit_deps(slot.unit, ir.n_stages)
                }
                assert {d.key for d in ir.deps(slot)} == want

    def test_slot_of_roundtrip(self):
        ir = OneFOneB(3).lower(4)
        for row in ir.slots:
            for slot in row:
                assert ir.slot_of(slot.unit) is slot

    def test_initial_ready_ranks_puts_sources_first(self):
        ir = OneFOneB(4).lower(8)
        order = ir.initial_ready_ranks()
        assert order[0] == 0  # only rank 0's first slot is dependency-free
        assert sorted(order) == [0, 1, 2, 3]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown unit kind"):
            list(iter_unit_deps(Unit(0, 0, "sideways"), 2))


class TestGraphChecks:
    def test_deadlock_rejected(self):
        class Bad(OneFOneB):
            def units(self, n_mbs):
                out = super().units(n_mbs)
                out[0] = list(reversed(out[0]))
                return out

        with pytest.raises(ValueError, match="deadlock"):
            Bad(2).lower(2).validate()

    def test_memory_bound_enforced(self):
        class Greedy(OneFOneB):
            """Claims 1F1B's bound but schedules like GPipe."""

            def units(self, n_mbs):
                return GPipe(self.n_stages).units(n_mbs)

        with pytest.raises(ValueError, match="live activations"):
            Greedy(3).lower(6).validate()

    def test_declared_bounds_hold_for_all_families(self):
        for sched in GRID:
            n_mbs = sched.n_actors * 2
            ir = sched.lower(n_mbs)
            peaks = ir.peak_live()
            for rank in range(ir.n_ranks):
                bound = sched.activation_bound(rank, n_mbs)
                if bound is not None:
                    assert peaks[rank] <= bound, (sched.name, rank)

    def test_stats_equivalent_to_ir_stats(self):
        from repro.core.schedules import schedule_stats

        for sched in all_schedules():
            a = schedule_stats(sched, 8, fwd_time=1.0, bwd_time=2.0)
            b = sched.lower(8).stats(fwd_time=1.0, bwd_time=2.0)
            assert a == b


class TestCustomLowering:
    def test_lower_is_overridable(self):
        """The extensibility claim at the IR level: a schedule may lower
        itself (e.g. to cache), and consumers only see the IR."""

        class Caching(OneFOneB):
            def __init__(self, n):
                super().__init__(n)
                self.calls = 0

            def lower(self, n_mbs):
                self.calls += 1
                return lower_schedule(self, n_mbs)

        s = Caching(2)
        ir = s.lower(4)
        assert s.calls == 1 and ir.n_slots == 16

    def test_repr_mentions_shape(self):
        r = repr(ZBH1(2).lower(2))
        assert "ZB-H1" in r and "slots=" in r and "cross" in r
