"""Smoke tests for the ``python -m repro`` artefact regenerator."""

from repro.__main__ import ARTEFACTS, main


class TestCli:
    def test_unknown_artefact_fails_cleanly(self, capsys):
        assert main(["not-a-figure"]) == 2
        assert "unknown artefact" in capsys.readouterr().out

    def test_fig10_regenerates(self, capsys):
        assert main(["fig10"]) == 0
        out = capsys.readouterr().out
        assert "remat" in out and "total step" in out

    def test_all_artefacts_registered(self):
        assert set(ARTEFACTS) == {"table1", "fig6", "fig7", "fig8", "fig9", "fig10"}
