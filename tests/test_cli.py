"""Smoke tests for the ``python -m repro`` artefact regenerator and the
generated-documentation freshness guard."""

import pathlib

from repro.__main__ import ARTEFACTS, main

REPO = pathlib.Path(__file__).resolve().parents[1]


class TestCli:
    def test_unknown_artefact_fails_cleanly(self, capsys):
        assert main(["not-a-figure"]) == 2
        assert "unknown artefact" in capsys.readouterr().out

    def test_fig10_regenerates(self, capsys):
        assert main(["fig10"]) == 0
        out = capsys.readouterr().out
        assert "remat" in out and "total step" in out

    def test_all_artefacts_registered(self):
        assert set(ARTEFACTS) == {
            "table1", "fig6", "fig7", "fig8", "fig9", "fig10",
            "docs-schedules", "dump-codegen",
        }

    def test_dump_codegen_prints_generated_source(self, capsys):
        assert main(["dump-codegen"]) == 0
        out = capsys.readouterr().out
        # per-task source: a def header and a donated out= call or an
        # inlined operator chain over named locals
        assert "task source: CodegenProgram" in out
        assert "def " in out
        # whole-mesh driver: send/recv pairs collapse into local rebinds
        assert "mesh driver: 2-stage GPipe" in out
        assert "def _driver(_in):" in out
        assert "return [" in out


class TestGeneratedDocs:
    def test_schedules_md_is_fresh(self):
        """docs/SCHEDULES.md must match what the generator produces from
        the live gallery — regenerate with `python -m repro
        docs-schedules` after changing schedules, stats, or the
        renderer."""
        from repro.docsgen import generate_schedules_md

        on_disk = (REPO / "docs" / "SCHEDULES.md").read_text()
        assert on_disk == generate_schedules_md(), (
            "docs/SCHEDULES.md is stale; run `python -m repro docs-schedules`"
        )

    def test_generator_is_deterministic(self):
        from repro.docsgen import generate_schedules_md

        assert generate_schedules_md() == generate_schedules_md()

    def test_gallery_page_covers_all_nine_schedules(self):
        from repro.docsgen import GALLERY_DOC, generate_schedules_md

        page = generate_schedules_md()
        assert len(GALLERY_DOC) == 9
        for doc in GALLERY_DOC:
            assert f"### {doc.schedule.name}" in page
            assert f"`{doc.config}`" in page

    def test_docs_schedules_cli_idempotent(self, capsys):
        assert main(["docs-schedules"]) == 0
        assert "up to date" in capsys.readouterr().out
