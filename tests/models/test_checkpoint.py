"""Checkpoint round-trip tests, including resuming distributed training,
atomic-write semantics, and typed rejection of missing/corrupt files."""

import os

import numpy as np
import pytest

from repro import core, ir
from repro.ir import nn, ops, pipeline_yield
from repro.models import TrainState, adam_apply, adam_init
from repro.models.checkpoint import (
    CheckpointCorruptError,
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
)
from tests.helpers import rng


class TestRoundTrip:
    def test_plain_pytree(self, tmp_path):
        state = {"a": np.arange(6, dtype=np.float32).reshape(2, 3),
                 "b": [np.float32(1.5), None],
                 "c": (np.int32(7),)}
        p = tmp_path / "ckpt.npz"
        save_checkpoint(p, state)
        out = load_checkpoint(p)
        np.testing.assert_array_equal(out["a"], state["a"])
        assert out["b"][1] is None
        assert out["c"][0] == 7

    def test_train_state_dataclass(self, tmp_path):
        params = {"w": rng(0).randn(3, 3).astype(np.float32)}
        state = TrainState(params, adam_init(params), np.int32(5))
        p = tmp_path / "state.npz"
        save_checkpoint(p, state)
        out = load_checkpoint(p)
        assert isinstance(out, TrainState)
        assert int(out.step) == 5
        np.testing.assert_array_equal(out.params["w"], params["w"])
        np.testing.assert_array_equal(out.opt_state["m"]["w"], np.zeros((3, 3)))

    def test_corrupt_structure_rejected(self, tmp_path):
        import json

        p = tmp_path / "bad.npz"
        np.savez(p, __structure__=np.frombuffer(
            json.dumps({"kind": "evil", "meta": None, "children": []}).encode(),
            dtype=np.uint8))
        with pytest.raises(ValueError, match="unknown node kind"):
            load_checkpoint(p)
        # the typed hierarchy: unknown structure is corruption
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(p)


class TestHardening:
    STATE = {"w": np.arange(12, dtype=np.float32).reshape(3, 4),
             "b": (np.float32(2.0), None)}

    def test_save_returns_final_path_and_appends_suffix(self, tmp_path):
        p = save_checkpoint(tmp_path / "ckpt", self.STATE)
        assert p == tmp_path / "ckpt.npz"  # np.savez suffix semantics kept
        assert p.exists()
        q = save_checkpoint(tmp_path / "other.npz", self.STATE)
        assert q == tmp_path / "other.npz"

    def test_atomic_save_leaves_no_droppings(self, tmp_path):
        save_checkpoint(tmp_path / "a", self.STATE)
        save_checkpoint(tmp_path / "a", self.STATE)  # overwrite in place
        assert sorted(f.name for f in tmp_path.iterdir()) == ["a.npz"]

    def test_missing_file_raises_typed_error(self, tmp_path):
        with pytest.raises(CheckpointError, match="does not exist"):
            load_checkpoint(tmp_path / "nope.npz")

    def test_truncated_file_rejected(self, tmp_path):
        p = save_checkpoint(tmp_path / "t", self.STATE)
        data = p.read_bytes()
        p.write_bytes(data[: len(data) // 2])
        with pytest.raises(CheckpointCorruptError, match="corrupt checkpoint"):
            load_checkpoint(p)

    def test_scribbled_file_rejected(self, tmp_path):
        p = save_checkpoint(tmp_path / "s", self.STATE)
        size = os.path.getsize(p)
        with open(p, "r+b") as f:
            f.seek(size // 2)
            f.write(b"\xde\xad\xbe\xef" * 8)
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(p)

    def test_non_checkpoint_zip_rejected(self, tmp_path):
        p = tmp_path / "z.npz"
        np.savez(p, a=np.ones(3))  # a zip, but no __structure__ member
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(p)

    def test_round_trip_unchanged_by_hardening(self, tmp_path):
        p = save_checkpoint(tmp_path / "rt", self.STATE)
        out = load_checkpoint(p)
        np.testing.assert_array_equal(out["w"], self.STATE["w"])
        assert out["b"][0] == np.float32(2.0) and out["b"][1] is None


class TestResumeTraining:
    def test_resume_matches_uninterrupted_run(self, tmp_path):
        r = rng(1)
        d, n_mbs, mbsz = 4, 4, 6
        params = {"w0": (r.randn(d, d) * 0.4).astype(np.float32),
                  "w1": (r.randn(d, d) * 0.4).astype(np.float32)}

        def loss_fn(p, mb):
            x, y = mb
            h = pipeline_yield(nn.relu(ops.matmul(x, p["w0"])))
            return ops.mean((ops.matmul(h, p["w1"]) - y) ** 2.0)

        def train_step(state, batch):
            def mg(mb):
                loss, grads = ir.value_and_grad(loss_fn)(state.params, mb)
                return grads, loss

            grads, loss = core.accumulate_grads(mg, None)(batch)
            return adam_apply(state, grads, np.float32(1e-2)), loss

        batches = [
            (r.randn(n_mbs, mbsz, d).astype(np.float32),
             r.randn(n_mbs, mbsz, d).astype(np.float32))
            for _ in range(4)
        ]
        mesh = core.RemoteMesh((2,))
        step = mesh.distributed(train_step, schedule=core.OneFOneB(2))

        # uninterrupted
        s = TrainState(params, adam_init(params), np.int32(0))
        for b in batches:
            s, _ = step(s, b)

        # interrupted after 2 steps, checkpointed, resumed in a new step fn
        s2 = TrainState(params, adam_init(params), np.int32(0))
        for b in batches[:2]:
            s2, _ = step(s2, b)
        ck = tmp_path / "resume.npz"
        save_checkpoint(ck, s2)
        s3 = load_checkpoint(ck)
        step2 = core.RemoteMesh((2,)).distributed(train_step, schedule=core.OneFOneB(2))
        for b in batches[2:]:
            s3, _ = step2(s3, b)

        assert int(s3.step) == int(s.step) == 4
        for k in params:
            np.testing.assert_allclose(s3.params[k], s.params[k], atol=1e-6)
