"""Tests for the example models, optimizers, data generators, and viz."""

import numpy as np
import pytest

from repro import ir, core, spmd
from repro.data import microbatch, regression_batches, token_batches
from repro.models import (
    TrainState,
    TransformerConfig,
    adam_apply,
    adam_init,
    constant_lr,
    ffn,
    init_mlp,
    init_transformer,
    mlp_forward,
    mlp_loss,
    sgd_apply,
    sgd_init,
    transformer_forward,
    transformer_loss,
    warmup_cosine_lr,
)
from repro.viz import render_schedule, render_timeline
from tests.helpers import check_grads, rng


class TestMlp:
    def test_figure1_ffn_runs_single_device(self):
        r = rng(0)
        X = r.randn(4, 6).astype(np.float32)
        W1 = r.randn(6, 8).astype(np.float32)
        W2 = r.randn(8, 6).astype(np.float32)
        out = ffn(X, W1, W2)
        np.testing.assert_allclose(out, np.maximum(X @ W1, 0) @ W2, atol=1e-5)

    def test_ffn_figure1c_instantiations(self):
        r = rng(1)
        X = r.randn(4, 6).astype(np.float32)
        W1 = r.randn(6, 8).astype(np.float32)
        W2 = r.randn(8, 6).astype(np.float32)
        jaxpr, _, _ = ir.trace(ffn, X, W1, W2)
        for axes in ([("data", 2), ("model", 1)], [("data", 1), ("model", 2)]):
            mesh = spmd.Mesh(axes)
            prog = spmd.partition(jaxpr, mesh,
                                  in_specs=[("batch", "emb"), ("emb", "mlp"), ("mlp", "emb")],
                                  rules={"batch": "data", "mlp": "model", "emb": None})
            out = spmd.SpmdExecutor(mesh).run(prog, [X, W1, W2])[0]
            np.testing.assert_allclose(out, ffn(X, W1, W2), atol=1e-5)

    def test_mlp_stage_structure(self):
        params = init_mlp(rng(2), 3, 4, 8, 2)
        x = rng(3).randn(5, 4).astype(np.float32)
        jaxpr, _, _ = ir.trace(lambda p, x: mlp_forward(p, x, 3), params, x)
        yields = [e for e in jaxpr.eqns if e.prim.name == "pipeline_yield"]
        assert len(yields) == 2

    def test_mlp_loss_grads(self):
        params = init_mlp(rng(4), 2, 4, 6, 3)
        x = rng(5).randn(5, 4).astype(np.float32)
        y = rng(6).randn(5, 3).astype(np.float32)
        check_grads(lambda p: mlp_loss(p, (x, y), 2), [params])


class TestTransformer:
    CFG = TransformerConfig(vocab=16, seq=6, d_model=8, n_heads=2, d_ff=16,
                            n_layers=2, n_stages=2)

    def test_forward_shape(self):
        p = init_transformer(rng(7), self.CFG)
        tokens = rng(8).randint(0, 16, (3, 6)).astype(np.int32)
        logits = transformer_forward(p, tokens, self.CFG)
        assert logits.shape == (3, 6, 16)

    def test_causality(self):
        # changing a future token must not affect earlier logits
        p = init_transformer(rng(9), self.CFG)
        t1 = rng(10).randint(0, 16, (1, 6)).astype(np.int32)
        t2 = t1.copy()
        t2[0, -1] = (t2[0, -1] + 1) % 16
        l1 = transformer_forward(p, t1, self.CFG)
        l2 = transformer_forward(p, t2, self.CFG)
        np.testing.assert_allclose(l1[0, :-1], l2[0, :-1], atol=1e-5)

    def test_loss_grads_numeric(self):
        p = init_transformer(rng(11), self.CFG)
        tokens = rng(12).randint(0, 16, (2, 6)).astype(np.int32)
        targets = rng(13).randint(0, 16, (2, 6)).astype(np.int32)
        # subset of params for speed
        sub = {k: p[k] for k in ["wte", "h0.mlp.wi", "ln_f.g"]}

        def loss(sub_p):
            full = dict(p, **sub_p)
            return transformer_loss(full, (tokens, targets), self.CFG)

        check_grads(loss, [sub], atol=5e-2, rtol=5e-2)

    def test_tied_embeddings_have_no_wout(self):
        cfg = TransformerConfig(vocab=16, seq=4, d_model=8, n_heads=2, d_ff=16,
                                n_layers=2, n_stages=2, tie_embeddings=True)
        p = init_transformer(rng(14), cfg)
        assert "w_out" not in p

    def test_bad_stage_split_rejected(self):
        cfg = TransformerConfig(n_layers=4, n_stages=3)
        with pytest.raises(ValueError):
            _ = cfg.layers_per_stage


class TestOptimizers:
    def test_sgd_matches_manual(self):
        p = {"w": np.ones(3, np.float32)}
        g = {"w": np.full(3, 0.5, np.float32)}
        s = TrainState(p, sgd_init(p), np.int32(0))
        s2 = sgd_apply(s, g, np.float32(0.1))
        np.testing.assert_allclose(s2.params["w"], 0.95)
        assert int(s2.step) == 1

    def test_sgd_momentum(self):
        p = {"w": np.zeros(2, np.float32)}
        g = {"w": np.ones(2, np.float32)}
        s = TrainState(p, sgd_init(p, momentum=0.9), np.int32(0))
        s = sgd_apply(s, g, np.float32(1.0), momentum=0.9)
        s = sgd_apply(s, g, np.float32(1.0), momentum=0.9)
        np.testing.assert_allclose(s.params["w"], -(1.0 + 1.9))

    def test_adam_first_step_size(self):
        p = {"w": np.zeros(2, np.float32)}
        g = {"w": np.full(2, 0.3, np.float32)}
        s = TrainState(p, adam_init(p), np.int32(0))
        s = adam_apply(s, g, np.float32(1e-2))
        # bias-corrected first step ~ lr * sign(g)
        np.testing.assert_allclose(s.params["w"], -1e-2, rtol=1e-3)

    def test_adam_traced_equals_eager(self):
        p = {"w": rng(15).randn(3).astype(np.float32)}
        g = {"w": rng(16).randn(3).astype(np.float32)}
        s = TrainState(p, adam_init(p), np.int32(0))
        eager = adam_apply(s, g, np.float32(1e-3))
        jaxpr, _, out_tree = ir.trace(lambda s, g: adam_apply(s, g, np.float32(1e-3)), s, g)
        flat, _ = ir.tree_flatten((s, g))
        out = ir.tree_unflatten(out_tree, ir.eval_jaxpr(jaxpr, flat))
        np.testing.assert_allclose(out.params["w"], eager.params["w"], rtol=1e-6)

    def test_schedules(self):
        const = constant_lr(0.1)
        assert const(np.int32(5)) == pytest.approx(0.1)
        wc = warmup_cosine_lr(1.0, 10, 110)
        assert float(wc(np.int32(5))) == pytest.approx(0.5)
        assert float(wc(np.int32(10))) == pytest.approx(1.0, abs=1e-3)
        assert float(wc(np.int32(110))) == pytest.approx(0.0, abs=1e-5)
        assert float(wc(np.int32(60))) == pytest.approx(0.5, abs=1e-2)


class TestData:
    def test_token_batches_shapes_and_range(self):
        (tok, tgt), = token_batches(32, 8, 4, 2, 1, seed=1)
        assert tok.shape == tgt.shape == (4, 2, 8)
        assert tok.min() >= 0 and tok.max() < 32
        np.testing.assert_array_equal(tok[..., 1:], tgt[..., :-1])

    def test_token_batches_deterministic(self):
        a = list(token_batches(16, 4, 2, 2, 2, seed=7))
        b = list(token_batches(16, 4, 2, 2, 2, seed=7))
        np.testing.assert_array_equal(a[0][0], b[0][0])
        np.testing.assert_array_equal(a[1][1], b[1][1])

    def test_regression_batches(self):
        (x, y), = regression_batches(4, 3, 2, 5, 1, seed=2)
        assert x.shape == (2, 5, 4) and y.shape == (2, 5, 3)
        assert np.abs(y).max() < 1.5  # tanh teacher + small noise

    def test_microbatch_reshape(self):
        b = np.arange(12).reshape(6, 2)
        mb = microbatch(b, 3)
        assert mb.shape == (3, 2, 2)
        np.testing.assert_array_equal(mb[1], b[2:4])

    def test_microbatch_indivisible(self):
        with pytest.raises(ValueError):
            microbatch(np.zeros((5, 2)), 2)


class TestViz:
    def test_render_schedule_gpipe(self):
        out = render_schedule(core.GPipe(2), 3)
        assert "actor 0" in out and "actor 1" in out
        assert "F0 F1 F2 b2 b1 b0" in out

    def test_render_schedule_interleaved_chunks(self):
        out = render_schedule(core.Interleaved1F1B(2, 2), 2)
        assert "'1" in out  # chunk annotation

    def test_render_schedule_zbv_chunks_annotated(self):
        # the v-shape places two chunks per rank; both must be labelled
        # with their rank-local chunk index in the full render
        out = render_schedule(core.ZBV(2), 2)
        assert "F0'0" in out and "F0'1" in out
        assert "i0'1" in out and "w0'0" in out

    @pytest.mark.parametrize("width", [8, 14, 30, 60, 120])
    def test_render_schedule_width_never_clips_mid_cell(self, width):
        # ZB-V stresses abbreviation: two same-kind chunks per rank must
        # stay distinguishable, rows must fit, cells must stay whole
        full_cells = {
            c
            for line in render_schedule(core.ZBV(4), 8).splitlines()
            for c in line.split(": ", 1)[1].split()
        }
        out = render_schedule(core.ZBV(4), 8, width=width)
        for line in out.splitlines():
            prefix, row = line.split(": ", 1)
            assert len(row) <= width
            for cell in row.split():
                if cell == "…":
                    continue
                # every rendered cell is a whole label: either the full
                # form or its chunk-0 abbreviation (suffix dropped)
                assert cell in full_cells or f"{cell}'0" in full_cells, cell

    def test_render_schedule_width_abbreviation_keeps_chunk1(self):
        # abbreviation may drop the chunk-0 suffix but never chunk 1's —
        # otherwise ZB-V's two chunks of one microbatch collapse into
        # identical labels
        for width in (20, 40, 60, 80):
            out = render_schedule(core.ZBV(2), 4, width=width)
            for line in out.splitlines():
                row = line.split(": ", 1)[1]
                cells = [c for c in row.split() if c != "…"]
                assert len(cells) == len(set(cells)), (width, row)

    def test_render_timeline(self):
        from repro.runtime.executor import TimelineEvent

        evs = [
            TimelineEvent(0, "task", "f0", 0.0, 1.0),
            TimelineEvent(1, "task", "b0", 1.0, 2.0),
        ]
        out = render_timeline(evs, 2, width=20)
        assert "actor 0" in out and "f" in out and "b" in out

    def test_render_timeline_empty(self):
        assert "empty" in render_timeline([], 2)
